"""Tests for the gate-level Rule 30 cell (Fig. 3) and the ring of cells."""

import numpy as np
import pytest

from repro.ca.automaton import ElementaryCellularAutomaton
from repro.ca.rule30 import Rule30Cell, Rule30Register, rule30_next_state
from repro.ca.rules import RULE_30, NEIGHBORHOOD_ORDER


class TestGateEquation:
    def test_matches_rule_table_for_all_neighbourhoods(self):
        """The Fig. 3 gate network (L XOR (S OR R)) equals the Table I truth table."""
        for left, center, right in NEIGHBORHOOD_ORDER:
            assert rule30_next_state(left, center, right) == RULE_30.next_state(
                left, center, right
            )

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            rule30_next_state(1, 2, 0)


class TestRule30Cell:
    def test_initial_state(self):
        assert Rule30Cell(1).state == 1

    def test_compute_does_not_change_output(self):
        """The master/slave split: compute must not expose the new value early."""
        cell = Rule30Cell(0)
        cell.compute(left=1, right=0)
        assert cell.state == 0

    def test_latch_commits_computed_value(self):
        cell = Rule30Cell(0)
        cell.compute(left=1, right=0)
        assert cell.latch() == 1
        assert cell.state == 1

    def test_latch_without_compute_raises(self):
        with pytest.raises(RuntimeError):
            Rule30Cell(0).latch()

    def test_reset_clears_pending_master(self):
        cell = Rule30Cell(0)
        cell.compute(left=1, right=1)
        cell.reset(0)
        with pytest.raises(RuntimeError):
            cell.latch()

    def test_invalid_initial_state_rejected(self):
        with pytest.raises(ValueError):
            Rule30Cell(2)


class TestRule30Register:
    def test_length_and_state(self):
        register = Rule30Register(seed_state=[1, 0, 0, 1, 0])
        assert len(register) == 5
        assert register.state.tolist() == [1, 0, 0, 1, 0]

    def test_requires_some_size_information(self):
        with pytest.raises(ValueError):
            Rule30Register()

    def test_conflicting_size_rejected(self):
        with pytest.raises(ValueError):
            Rule30Register(4, seed_state=[1, 0, 1])

    def test_matches_vectorised_automaton(self):
        """The explicit ring of gate-level cells evolves exactly like the engine."""
        seed = [0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 1]
        register = Rule30Register(seed_state=seed)
        automaton = ElementaryCellularAutomaton(len(seed), 30, seed_state=seed)
        for _ in range(32):
            assert np.array_equal(register.clock(), automaton.step())

    def test_reset_restores_seed(self):
        register = Rule30Register(seed_state=[1, 0, 1, 0, 0, 1])
        register.clock(9)
        register.reset()
        assert register.state.tolist() == [1, 0, 1, 0, 0, 1]

    def test_reset_with_new_seed(self):
        register = Rule30Register(8, seed=0)
        register.reset([1, 1, 1, 1, 0, 0, 0, 0])
        assert register.state.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_run_space_time_shape(self):
        register = Rule30Register(16, seed=4)
        assert register.run(10).shape == (11, 16)

    def test_clock_zero_cycles_is_noop(self):
        register = Rule30Register(8, seed=2)
        before = register.state
        register.clock(0)
        assert np.array_equal(register.state, before)
