"""Tests for the primitive-polynomial table."""

import pytest

from repro.lfsr.polynomials import PRIMITIVE_POLYNOMIALS, primitive_taps


class TestPrimitiveTaps:
    def test_includes_register_length(self):
        taps = primitive_taps(16)
        assert taps[0] == 16

    def test_all_taps_within_register(self):
        for n_bits in PRIMITIVE_POLYNOMIALS:
            for tap in primitive_taps(n_bits):
                assert 1 <= tap <= n_bits

    def test_unsupported_length_rejected(self):
        with pytest.raises(ValueError):
            primitive_taps(64)

    def test_table_covers_2_to_32(self):
        assert set(PRIMITIVE_POLYNOMIALS) == set(range(2, 33))

    @pytest.mark.parametrize("n_bits", [3, 4, 5, 7, 8, 9, 11, 15])
    def test_taps_yield_maximal_period(self, n_bits):
        """Small registers: the tabulated taps must produce the full 2^n - 1 cycle."""
        from repro.lfsr.lfsr import FibonacciLFSR

        lfsr = FibonacciLFSR(n_bits, state=1)
        seen = set()
        state = lfsr.state
        for _ in range((1 << n_bits) - 1):
            assert state not in seen
            seen.add(state)
            lfsr.step()
            state = lfsr.state
        assert state == 1  # back to the seed after the full period
        assert len(seen) == (1 << n_bits) - 1
