"""The control half of the wire: chunk types 5-8, pinned byte for byte.

The loss-resilience layer extended the chunk protocol *additively* — four
new chunk type bytes (FRAME_SEGMENT=5, FRAME_PARITY=6, CONTROL_ACK=7,
CONTROL_RATE=8) with their own payload structs, the frozen v1 chunk header
and types 1-4 untouched.  These tests pin that contract:

* golden blobs for the control payloads (a re-layout breaks the hex, not
  just a round-trip);
* every malformed payload raises the typed
  :class:`~repro.stream.protocol.StreamProtocolError` — never a bare
  ``struct.error`` leaking into a session;
* control chunks are feedback-path-only: on the forward path a strict
  session raises, a resilient one counts-and-survives;
* the node's feedback loop survives garbage — malformed or non-control
  chunks on the back channel are counted, never kill the stream.
"""

import asyncio

import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.stream.node import BitrateGovernor, CameraNode
from repro.stream.protocol import (
    Chunk,
    ChunkType,
    ControlAck,
    FrameParity,
    FrameSegment,
    RateAdvice,
    StreamProtocolError,
    build_frame_parity,
    decode_control_ack,
    decode_frame_parity,
    decode_frame_segment,
    decode_rate_advice,
    encode_chunk,
    encode_control_ack,
    encode_frame_parity,
    encode_frame_segment,
    encode_rate_advice,
    encode_stream_end,
    recover_missing_payload,
)
from repro.stream.session import StreamSession
from repro.stream.transport import loopback_duplex_pair


CONFIG = SensorConfig(rows=16, cols=16)

ACK = ControlAck(
    frame_index=7,
    n_expected_chunks=5,
    n_received_chunks=4,
    n_recovered_chunks=1,
    n_samples_expected=50,
    n_samples_received=37,
)
ADVICE = RateAdvice(frame_index=7, advised_samples=37, loss_fraction=0.26)


def run(coro):
    return asyncio.run(coro)


class InlineScheduler:
    async def submit(self, key, fn):
        future = asyncio.get_running_loop().create_future()
        future.set_result(fn())
        return future


class TestChunkTypeRegistry:
    def test_the_frozen_types_kept_their_bytes(self):
        assert ChunkType.STREAM_START == 1
        assert ChunkType.FRAME_DATA == 2
        assert ChunkType.FRAME_COMPLETE == 3
        assert ChunkType.STREAM_END == 4

    def test_the_additive_types_pin_their_bytes(self):
        assert ChunkType.FRAME_SEGMENT == 5
        assert ChunkType.FRAME_PARITY == 6
        assert ChunkType.CONTROL_ACK == 7
        assert ChunkType.CONTROL_RATE == 8


class TestControlGoldenBlobs:
    """The control payload layouts, frozen as hex."""

    ACK_HEX = "000000070005000400010000003200000025"
    ADVICE_HEX = "00000007000000253fd0a3d70a3d70a4"
    ACK_CHUNK_HEX = (
        "cc0700030000000900000012000000070005000400010000003200000025"
    )
    ADVICE_CHUNK_HEX = "cc0800030000000a0000001000000007000000253fd0a3d70a3d70a4"

    def test_control_ack_encodes_to_the_golden_bytes(self):
        assert encode_control_ack(ACK).hex() == self.ACK_HEX

    def test_rate_advice_encodes_to_the_golden_bytes(self):
        assert encode_rate_advice(ADVICE).hex() == self.ADVICE_HEX

    def test_golden_blobs_decode_back_exactly(self):
        assert decode_control_ack(bytes.fromhex(self.ACK_HEX)) == ACK
        assert decode_rate_advice(bytes.fromhex(self.ADVICE_HEX)) == ADVICE

    def test_whole_control_chunks_pin_the_chunk_header_too(self):
        ack_chunk = Chunk(
            chunk_type=ChunkType.CONTROL_ACK,
            stream_id=3,
            sequence=9,
            payload=encode_control_ack(ACK),
        )
        advice_chunk = Chunk(
            chunk_type=ChunkType.CONTROL_RATE,
            stream_id=3,
            sequence=10,
            payload=encode_rate_advice(ADVICE),
        )
        assert encode_chunk(ack_chunk).hex() == self.ACK_CHUNK_HEX
        assert encode_chunk(advice_chunk).hex() == self.ADVICE_CHUNK_HEX

    def test_loss_semantics_of_the_ack(self):
        assert not ACK.clean
        assert ACK.loss_fraction == pytest.approx(13 / 50)
        clean = ControlAck(0, 1, 1, 0, 50, 50)
        assert clean.clean and clean.loss_fraction == 0.0
        # Unknown expectation is never clean — the governor must back off.
        unknown = ControlAck(0, 5, 0, 0, 0, 0)
        assert not unknown.clean


class TestSegmentAndParityRoundTrip:
    def _segment(self, index=1, sample_bytes=b"\x5a\x5a\x5a"):
        return FrameSegment(
            frame_index=2,
            grid_row=0,
            grid_col=0,
            keyframe=True,
            segment_index=index,
            n_segments=4,
            start_sample=12,
            n_samples=13,
            prefix_bytes=b"\xc5\x01\x02\x03",
            sample_bytes=sample_bytes,
        )

    def test_segment_round_trips(self):
        segment = self._segment()
        assert decode_frame_segment(encode_frame_segment(segment)) == segment

    def test_parity_round_trips_and_recovers(self):
        payloads = [b"abcd", b"efg", b"hijkl"]
        parity = build_frame_parity(0, 0, 0, payloads)
        decoded = decode_frame_parity(encode_frame_parity(parity))
        assert decoded == parity
        recovered = recover_missing_payload(
            decoded, {0: payloads[0], 2: payloads[2]}, 1
        )
        assert recovered == payloads[1]


class TestMalformedPayloadsRaiseTyped:
    """Every decoder failure is the typed error, never a bare struct.error."""

    def test_truncated_control_ack(self):
        with pytest.raises(StreamProtocolError):
            decode_control_ack(b"\x01\x02\x03")

    def test_impossible_control_ack_counts(self):
        # More chunks received than expected cannot describe any frame.
        bad = ControlAck(0, 2, 3, 0, 50, 50)
        with pytest.raises(StreamProtocolError):
            decode_control_ack(encode_control_ack(bad))

    def test_truncated_rate_advice(self):
        with pytest.raises(StreamProtocolError):
            decode_rate_advice(b"\x00" * 4)

    def test_impossible_loss_fraction(self):
        payload = encode_rate_advice(RateAdvice(0, 10, 0.0))
        import struct

        mangled = payload[:8] + struct.pack(">d", 1.5)
        with pytest.raises(StreamProtocolError):
            decode_rate_advice(mangled)

    def test_segment_checksum_catches_corruption(self):
        segment = TestSegmentAndParityRoundTrip()._segment()
        payload = bytearray(encode_frame_segment(segment))
        payload[-1] ^= 0xFF
        with pytest.raises(StreamProtocolError):
            decode_frame_segment(bytes(payload))

    def test_segment_header_too_short(self):
        with pytest.raises(StreamProtocolError):
            decode_frame_segment(b"\x00" * 4)

    def test_parity_truncated_length_table(self):
        parity = build_frame_parity(0, 0, 0, [b"abcd", b"efgh"])
        payload = encode_frame_parity(parity)
        with pytest.raises(StreamProtocolError):
            decode_frame_parity(payload[:10])


class TestControlChunksStayOffTheForwardPath:
    """A control chunk arriving as stream data is a protocol violation."""

    async def _feed_control(self, resilient):
        session = StreamSession(
            1, InlineScheduler(), resilient=resilient, reconstruct=False
        )
        # A stream whose first chunk is already a control chunk: the strict
        # FSM rejects it before any stream state exists.
        chunk = Chunk(
            chunk_type=ChunkType.CONTROL_ACK,
            stream_id=1,
            sequence=0,
            payload=encode_control_ack(ACK),
        )
        await session.handle_chunk(chunk)
        return session

    def test_strict_session_raises(self):
        with pytest.raises(StreamProtocolError):
            run(self._feed_control(resilient=False))

    def test_resilient_session_counts_and_survives(self):
        session = run(self._feed_control(resilient=True))
        assert session.stats.n_corrupt_chunks == 1


class TestNodeFeedbackLoopSurvivesGarbage:
    """Feedback is advisory: a poisoned back channel must not kill a stream."""

    def test_malformed_and_non_control_feedback_are_counted(self):
        async def scenario():
            node_end, receiver_end = loopback_duplex_pair(max_buffered=64)
            governor = BitrateGovernor()
            node = CameraNode(node_end, governor=governor, feedback=True)
            # Poison the back channel before the stream begins: a control
            # chunk with a truncated payload, a non-control chunk, and one
            # valid ack that must still get through.
            await receiver_end.send(
                encode_chunk(
                    Chunk(
                        chunk_type=ChunkType.CONTROL_ACK,
                        stream_id=1,
                        sequence=0,
                        payload=b"\x01\x02",
                    )
                )
            )
            await receiver_end.send(
                encode_chunk(
                    Chunk(
                        chunk_type=ChunkType.STREAM_END,
                        stream_id=1,
                        sequence=1,
                        payload=encode_stream_end(0),
                    )
                )
            )
            await receiver_end.send(
                encode_chunk(
                    Chunk(
                        chunk_type=ChunkType.CONTROL_ACK,
                        stream_id=1,
                        sequence=2,
                        payload=encode_control_ack(ACK),
                    )
                )
            )
            imager = CompressiveImager(CONFIG, seed=3)
            scenes = [make_scene("blobs", (16, 16), seed=i) for i in range(3)]
            send_task = asyncio.create_task(node.stream_frames(imager, scenes))
            # Let the feedback task drain its three queued chunks before the
            # stream finishes and tears it down.
            for _ in range(10_000):
                if node.n_feedback_chunks + node.n_feedback_errors >= 3:
                    break
                await asyncio.sleep(0)
            stats = await send_task
            return node, governor, stats

        node, governor, stats = run(scenario())
        # The stream itself completed untouched...
        assert stats.n_frames == 3
        # ...while the two bad chunks were counted and the good one landed.
        assert node.n_feedback_errors == 2
        assert node.n_feedback_chunks == 1
        assert governor.n_feedback == 1
