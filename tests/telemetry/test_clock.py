"""Clock seam: the injected Protocol, the manual test clock, the funnel."""

import time

import pytest

from repro.telemetry import MONOTONIC_CLOCK, Clock, ManualClock, MonotonicClock


class TestManualClock:
    def test_starts_where_told_and_advances_exactly(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == 5.0
        clock.advance(0.25)
        assert clock.now() == 5.25
        clock.advance(0.0)
        assert clock.now() == 5.25

    def test_negative_advance_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError, match="backward"):
            clock.advance(-1.0)

    def test_is_a_clock(self):
        assert isinstance(ManualClock(), Clock)


class TestMonotonicClock:
    def test_tracks_time_monotonic(self):
        clock = MonotonicClock()
        before = time.monotonic()
        reading = clock.now()
        after = time.monotonic()
        assert before <= reading <= after

    def test_never_goes_backwards(self):
        clock = MonotonicClock()
        readings = [clock.now() for _ in range(100)]
        assert readings == sorted(readings)

    def test_singleton_is_a_monotonic_clock(self):
        assert isinstance(MONOTONIC_CLOCK, MonotonicClock)
        assert isinstance(MONOTONIC_CLOCK, Clock)
