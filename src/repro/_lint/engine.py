"""Core machinery of the invariant linter: contexts, suppressions, runners.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``
only) so it runs in any environment the library itself runs in — CI, a
contributor checkout, or the tier-1 suite.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from collections.abc import Iterable, Iterator, Sequence

#: Rule id reserved for malformed/unjustified suppression comments.
SUPPRESSION_RULE_ID = "REPRO000"

#: ``# repro-lint: allow=REPRO001,REPRO002 -- justification`` (the
#: justification after ``--`` is mandatory; rule ids are comma-separated).
_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"^allow=(?P<ids>REPRO\d{3}(?:\s*,\s*REPRO\d{3})*)"
    r"(?:\s+--\s*(?P<why>\S.*))?$"
)


class LintError(RuntimeError):
    """The linter itself could not analyse an input (bad path, syntax error)."""


@dataclass(frozen=True)
class Finding:
    """One structured lint finding: where, which contract, and how to fix it."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""

    def render(self) -> str:
        """``path:line:col: RULEID message`` (the clickable one-line form)."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro-lint: allow=...`` comment."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str


class ModuleContext:
    """Everything a rule needs to know about one Python module."""

    def __init__(self, source: str, path: str) -> None:
        self.source = source
        #: Normalised (posix) path the findings report.
        self.path = PurePosixPath(path).as_posix()
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as error:
            raise LintError(f"{self.path}: cannot parse: {error}") from error
        parts = PurePosixPath(self.path).parts
        #: Posix path relative to the ``repro`` package root (e.g.
        #: ``repro/ca/selection.py``) or ``None`` outside the library.
        self.module_rel: str | None = None
        if "repro" in parts:
            index = parts.index("repro")
            self.module_rel = "/".join(parts[index:])
        #: True for library code under ``src/repro`` — where the
        #: architectural contracts bind.  Tests, examples and benchmarks get
        #: a freer hand (they *probe* the contracts).
        self.is_library = self.module_rel is not None and "tests" not in parts
        self.is_test = "tests" in parts
        self.suppressions = _parse_suppressions(source)
        self._suppressed_lines: dict[int, set[str]] = {}
        for suppression in self.suppressions:
            if suppression.justification:
                self._suppressed_lines.setdefault(suppression.line, set()).update(
                    suppression.rule_ids
                )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when a justified suppression for ``rule_id`` covers ``line``."""
        return rule_id in self._suppressed_lines.get(line, set())

    def suppression_findings(self) -> Iterator[Finding]:
        """Findings for suppressions missing their mandatory justification."""
        for suppression in self.suppressions:
            if not suppression.justification:
                yield Finding(
                    rule_id=SUPPRESSION_RULE_ID,
                    path=self.path,
                    line=suppression.line,
                    column=0,
                    message=(
                        "suppression without a justification: every "
                        "`repro-lint: allow=` comment must explain itself"
                    ),
                    hint=(
                        "append `-- <one-line reason>` to the suppression "
                        "comment; an exception nobody can justify is a bug"
                    ),
                )


def _parse_suppressions(source: str) -> list[Suppression]:
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            body = match.group("body").strip()
            allow = _ALLOW_RE.match(body)
            if allow is None:
                # A repro-lint comment that does not parse is treated as an
                # unjustified suppression: loud, never silently ignored.
                suppressions.append(
                    Suppression(line=token.start[0], rule_ids=(), justification="")
                )
                continue
            ids = tuple(
                rule_id.strip() for rule_id in allow.group("ids").split(",")
            )
            justification = (allow.group("why") or "").strip()
            suppressions.append(
                Suppression(
                    line=token.start[0], rule_ids=ids, justification=justification
                )
            )
    except tokenize.TokenError:
        # A tokenisation failure will already have surfaced as a parse error.
        pass
    return suppressions


# --------------------------------------------------------------------- running
def lint_source(
    source: str,
    path: str,
    *,
    rules: Sequence | None = None,
) -> list[Finding]:
    """Lint one in-memory module as if it lived at ``path``.

    ``path`` decides which contracts bind (library code vs. tests), so the
    fixture tests can replay a violation exactly where it would occur.
    ``rules`` restricts the pass to a subset (default: all registered rules).
    """
    from repro._lint.rules import RULES

    active = list(RULES if rules is None else rules)
    context = ModuleContext(source, path)
    findings = list(context.suppression_findings())
    for rule in active:
        for finding in rule.check(context):
            if not context.is_suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such file or directory: {raw}")
        if path.is_file():
            if path.suffix == ".py":
                yield path
        else:
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )


def lint_paths(
    paths: Iterable[str],
    *,
    rules: Sequence | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths`` and return all findings."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path), rules=rules))
    return findings
