"""Argument-validation helpers used across the library.

Every public constructor in the sensor and CS packages validates its
parameters eagerly so that configuration errors surface at object-creation
time rather than deep inside a frame simulation.  The helpers below raise
``ValueError`` (or ``TypeError`` for wrong types) with messages that name the
offending parameter, which keeps the call sites to a single line.
"""

from __future__ import annotations

import numbers
from collections.abc import Sequence

import numpy as np


def check_positive(name: str, value, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive (or non-negative) number.

    Parameters
    ----------
    name:
        Parameter name used in the error message.
    value:
        The number to validate.
    allow_zero:
        When true, zero is accepted.
    """
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    else:
        if value <= 0:
            raise ValueError(f"{name} must be > 0, got {value}")


def check_in_range(name: str, value, low, high, *, inclusive: bool = True) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict when not inclusive)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value}")


def check_probability(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value`` is a probability in [0, 1]."""
    check_in_range(name, value, 0.0, 1.0)


def check_power_of_two(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive integer power of two."""
    if not isinstance(value, numbers.Integral) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value}")


def check_shape(name: str, array: np.ndarray, shape: tuple[int, ...]) -> None:
    """Raise ``ValueError`` unless ``array.shape`` equals ``shape``.

    A ``-1`` entry in ``shape`` matches any extent along that axis.
    """
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected != -1 and actual != expected:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {shape} (mismatch on axis {axis})"
            )


def check_binary_array(name: str, array: np.ndarray) -> np.ndarray:
    """Return ``array`` as ``uint8`` after checking it only contains 0/1 values."""
    array = np.asarray(array)
    if array.size and not np.isin(array, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 values")
    return array.astype(np.uint8)


def check_choice(name: str, value: str, choices: Sequence[str]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)}, got {value!r}")
