"""Tests for the CA sequence statistics (class-III behaviour arguments)."""

import numpy as np
import pytest

from repro.ca.analysis import (
    bit_balance,
    classify_behaviour,
    detect_cycle,
    run_length_histogram,
    sequence_entropy,
    spatial_entropy,
    temporal_autocorrelation,
)
from repro.ca.automaton import ElementaryCellularAutomaton


class TestDetectCycle:
    def test_finds_short_cycle_of_trivial_rule(self):
        """Rule 204 is the identity: every state is a fixed point (period 1)."""
        automaton = ElementaryCellularAutomaton(16, 204, seed=3)
        cycle = detect_cycle(automaton, 10)
        assert cycle is not None
        tail, period = cycle
        assert period == 1

    def test_rule30_large_ring_has_no_short_cycle(self):
        automaton = ElementaryCellularAutomaton(64, 30, seed=3)
        assert detect_cycle(automaton, 2000) is None

    def test_small_ring_cycles_eventually(self):
        """A 8-cell register has at most 256 states, so a cycle must appear."""
        automaton = ElementaryCellularAutomaton(8, 30, seed=3)
        assert detect_cycle(automaton, 300) is not None

    def test_invalid_max_steps(self):
        with pytest.raises(ValueError):
            detect_cycle(ElementaryCellularAutomaton(8, seed=0), 0)


class TestBitStatistics:
    def test_bit_balance_half_for_alternating(self):
        assert bit_balance(np.array([0, 1] * 50)) == 0.5

    def test_bit_balance_empty_rejected(self):
        with pytest.raises(ValueError):
            bit_balance(np.array([]))

    def test_entropy_of_constant_stream_is_zero(self):
        assert sequence_entropy(np.zeros(256, dtype=np.uint8)) == 0.0

    def test_entropy_of_random_stream_near_one(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 4096)
        assert sequence_entropy(bits) > 0.95

    def test_entropy_requires_enough_bits(self):
        with pytest.raises(ValueError):
            sequence_entropy(np.array([1, 0]), block_length=4)

    def test_spatial_entropy_averages_rows(self):
        diagram = np.vstack([np.zeros(64, dtype=np.uint8), np.ones(64, dtype=np.uint8)])
        assert spatial_entropy(diagram) == 0.0

    def test_autocorrelation_detects_period_two(self):
        bits = np.array([0, 1] * 200)
        correlations = temporal_autocorrelation(bits, max_lag=4)
        assert correlations[1] > 0.9  # lag 2 strongly correlated
        assert correlations[0] < -0.9  # lag 1 anti-correlated

    def test_autocorrelation_of_random_stream_is_small(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 8000)
        assert np.max(np.abs(temporal_autocorrelation(bits, max_lag=16))) < 0.05

    def test_autocorrelation_requires_enough_samples(self):
        with pytest.raises(ValueError):
            temporal_autocorrelation(np.array([0, 1, 0]), max_lag=8)

    def test_run_length_histogram_counts_all_runs(self):
        bits = np.array([0, 0, 1, 1, 1, 0])
        histogram = run_length_histogram(bits)
        assert histogram[0] == 1  # the final single 0
        assert histogram[1] == 1  # the leading 00
        assert histogram[2] == 1  # the 111
        assert histogram.sum() == 3


class TestRule30IsClassIII:
    """The empirical facts behind the paper's choice of Rule 30 [10]."""

    def test_rule30_center_column_is_balanced_and_high_entropy(self):
        stats = classify_behaviour(30, n_cells=128, n_steps=2048, seed=7)
        assert 0.45 < stats["balance"] < 0.55
        assert stats["entropy"] > 0.95
        assert stats["max_autocorrelation"] < 0.1

    def test_rule30_beats_structured_rules(self):
        chaotic = classify_behaviour(30, n_cells=96, n_steps=1024, seed=7)
        traffic = classify_behaviour(184, n_cells=96, n_steps=1024, seed=7)
        assert chaotic["entropy"] > traffic["entropy"]

    def test_additive_rule90_shows_more_structure_than_rule30(self):
        chaotic = classify_behaviour(30, n_cells=96, n_steps=1024, seed=9)
        additive = classify_behaviour(90, n_cells=96, n_steps=1024, seed=9)
        assert chaotic["max_autocorrelation"] <= additive["max_autocorrelation"] + 0.05
