"""repro — reproduction of "Concurrent focal-plane generation of compressed samples
from time-encoded pixel values" (Trevisi et al., DATE 2018).

The library simulates, end to end, an image sensor that produces compressive
-sampling measurements directly at the focal plane: light is encoded into
pixel firing times, a Rule 30 cellular automaton selects which pixels
contribute to each compressed sample, a token protocol serialises the pixel
events onto shared column buses, and a global-counter TDC plus a
sample-and-add chain accumulate each 20-bit compressed sample — after which
the image is recovered off-chip with standard sparse-recovery solvers from
nothing but the samples and the CA seed.

Quickstart
----------
>>> from repro import CompressiveImager, SensorConfig, make_scene, reconstruct_frame
>>> imager = CompressiveImager(SensorConfig())
>>> frame = imager.capture_scene(make_scene("blobs", seed=1), n_samples=1200)
>>> result = reconstruct_frame(frame, dictionary="dct", solver="fista")
"""

from repro.ca import CASelectionGenerator, ElementaryCellularAutomaton, RuleTable
from repro.cs import (
    BlockCompressiveSampler,
    SensingOperator,
    StepSizeCache,
    StructuredSensingOperator,
    make_dictionary,
    psnr,
    ssim,
)
from repro.io import decode_frame, encode_frame
from repro.optics import PhotoConversion, make_scene
from repro.pixel import Pixel, TimeEncoder
from repro.recon import (
    IncrementalTiledReconstructor,
    reconstruct_frame,
    reconstruct_samples,
    reconstruct_tiled,
)
from repro.sensor import (
    CompressedFrame,
    CompressiveImager,
    SensorConfig,
    TiledCaptureResult,
    TiledSensorArray,
    VideoSequencer,
)
from repro.stream import (
    BitrateGovernor,
    CameraNode,
    LoopbackTransport,
    ReceiverHub,
    StreamReceiver,
)
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RuleTable",
    "ElementaryCellularAutomaton",
    "CASelectionGenerator",
    "SensingOperator",
    "StructuredSensingOperator",
    "StepSizeCache",
    "BlockCompressiveSampler",
    "make_dictionary",
    "psnr",
    "ssim",
    "make_scene",
    "PhotoConversion",
    "TimeEncoder",
    "Pixel",
    "SensorConfig",
    "CompressiveImager",
    "CompressedFrame",
    "reconstruct_frame",
    "reconstruct_samples",
    "reconstruct_tiled",
    "TiledSensorArray",
    "TiledCaptureResult",
    "VideoSequencer",
    "encode_frame",
    "decode_frame",
    "IncrementalTiledReconstructor",
    "CameraNode",
    "BitrateGovernor",
    "StreamReceiver",
    "ReceiverHub",
    "LoopbackTransport",
    "Telemetry",
]
