"""Voltage comparator with offset and auto-zeroing.

The comparator in Fig. 1 flips its output ``V_1`` when ``V_pix`` crosses
``V_ref``.  Real comparators add an input-referred offset (which shows up as
fixed-pattern noise in the time-encoded values) and a propagation delay.  The
prototype mitigates the offset with a MiM-capacitor auto-zeroing scheme
(Section IV); the model exposes both the raw offset and the residual offset
after auto-zeroing so the benchmarks can quantify what auto-zeroing buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


@dataclass
class Comparator:
    """Behavioural comparator.

    Attributes
    ----------
    offset_sigma:
        Standard deviation (V) of the pixel-to-pixel input-referred offset
        before auto-zeroing.
    autozero:
        Whether the auto-zeroing scheme is active.
    autozero_residual:
        Fraction of the offset that survives auto-zeroing (charge injection
        and capacitor mismatch leave a small residue).
    delay:
        Propagation delay (s) from the threshold crossing to the ``V_1`` edge.
    delay_jitter_sigma:
        RMS jitter (s) on that delay.
    seed:
        Seed for the per-pixel offset map and jitter draws.
    """

    offset_sigma: float = 5.0e-3
    autozero: bool = True
    autozero_residual: float = 0.05
    delay: float = 20.0e-9
    delay_jitter_sigma: float = 0.0
    seed: int = 2018

    def __post_init__(self) -> None:
        check_positive("offset_sigma", self.offset_sigma, allow_zero=True)
        check_positive("autozero_residual", self.autozero_residual, allow_zero=True)
        check_positive("delay", self.delay, allow_zero=True)
        check_positive("delay_jitter_sigma", self.delay_jitter_sigma, allow_zero=True)

    def effective_offset_sigma(self) -> float:
        """Offset sigma actually seen at the input after (optional) auto-zeroing."""
        if self.autozero:
            return self.offset_sigma * self.autozero_residual
        return self.offset_sigma

    def offset_map(self, shape, *, rng: SeedLike = None) -> np.ndarray:
        """Per-pixel input-referred offset map (V), deterministic for a given seed."""
        generator = new_rng(rng if rng is not None else self.seed)
        return self.effective_offset_sigma() * generator.standard_normal(shape)

    def crossing_delay(self, shape, *, rng: SeedLike = None) -> np.ndarray:
        """Per-event propagation delay (s) including jitter."""
        generator = new_rng(rng if rng is not None else self.seed + 1)
        if self.delay_jitter_sigma > 0.0:
            jitter = self.delay_jitter_sigma * generator.standard_normal(shape)
        else:
            jitter = np.zeros(shape)
        return np.clip(self.delay + jitter, 0.0, None)

    def effective_threshold(
        self, reference_voltage: float, shape, *, rng: SeedLike = None
    ) -> np.ndarray:
        """The threshold each pixel actually compares against: ``V_ref`` plus its offset."""
        check_positive("reference_voltage", reference_voltage)
        return reference_voltage + self.offset_map(shape, rng=rng)
