"""Ablations of the design choices DESIGN.md calls out (not in the paper).

The paper fixes its architectural knobs without exploring them; these
benchmarks quantify what each choice buys so the defaults can be defended:

* the CA rule driving the selection (Rule 30 vs structured rules),
* the number of CA steps between compressed samples,
* the pixel/counter depth ``N_b`` (Eq. 1 trade-off between resolution and
  payload size),
* the event duration (column-bus termination delay) vs queueing,
* the receiver-side sparsifying dictionary across scene statistics.
"""

from benchmarks.conftest import print_table
from repro.analysis.ablation import (
    ablate_ca_rule,
    ablate_dictionary,
    ablate_event_duration,
    ablate_pixel_depth,
    ablate_steps_per_sample,
)


def test_ablation_ca_rule(benchmark):
    rows = benchmark.pedantic(
        lambda: ablate_ca_rule(rules=(30, 90, 110, 184), image_shape=(32, 32), max_iterations=150),
        rounds=1, iterations=1,
    )
    print_table("Ablation — selection CA rule", rows)
    by_rule = {int(row["rule"]): row for row in rows}
    # Rule 30 produces no repeated selection patterns and reconstructs at least
    # as well as every structured alternative (small tolerance for solver noise).
    assert by_rule[30]["distinct_rows"] == by_rule[30]["n_samples"]
    for rule in (90, 184):
        assert by_rule[30]["psnr_db"] >= by_rule[rule]["psnr_db"] - 0.5


def test_ablation_steps_per_sample(benchmark):
    rows = benchmark.pedantic(
        lambda: ablate_steps_per_sample((1, 2, 4, 8), image_shape=(32, 32), max_iterations=150),
        rounds=1, iterations=1,
    )
    print_table("Ablation — CA steps per compressed sample", rows)
    psnrs = [row["psnr_db"] for row in rows]
    # One step already decorrelates the patterns: extra mixing buys little, which
    # is why the hardware can afford a single CA clock between samples.
    assert max(psnrs) - min(psnrs) < 6.0


def test_ablation_pixel_depth(benchmark):
    rows = benchmark.pedantic(
        lambda: ablate_pixel_depth((6, 8, 10), rows=32, cols=32, max_iterations=120),
        rounds=1, iterations=1,
    )
    print_table("Ablation — pixel / counter depth N_b", rows)
    by_depth = {row["pixel_bits"]: row for row in rows}
    # Eq. (1): each extra pixel bit adds exactly one bit to every compressed sample.
    assert by_depth[8]["sample_bits"] == by_depth[6]["sample_bits"] + 2
    assert by_depth[10]["sample_bits"] == by_depth[8]["sample_bits"] + 2
    # Payload grows with depth.
    assert (
        by_depth[10]["bits_per_frame"]
        > by_depth[8]["bits_per_frame"]
        > by_depth[6]["bits_per_frame"]
    )


def test_ablation_event_duration(benchmark):
    rows = benchmark.pedantic(
        lambda: ablate_event_duration((1e-9, 5e-9, 20e-9, 80e-9), n_events=32, n_trials=150),
        rounds=1, iterations=1,
    )
    print_table("Ablation — event duration vs column-bus queueing", rows)
    fractions = [row["queued_fraction"] for row in rows]
    # Queueing pressure grows monotonically with the termination delay; at the
    # paper's 5 ns it stays a small fraction of the events.
    assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
    assert rows[1]["queued_fraction"] < 0.2


def test_ablation_dictionary(benchmark):
    rows = benchmark.pedantic(
        lambda: ablate_dictionary(
            dictionaries=("dct", "haar", "identity"),
            image_shape=(32, 32),
            scene_kinds=("blobs", "text", "points"),
            max_iterations=150,
        ),
        rounds=1, iterations=1,
    )
    print_table("Ablation — receiver-side dictionary", rows)
    table = {(row["scene"], row["dictionary"]): row["psnr_db"] for row in rows}
    # Smooth scenes favour the DCT; pixel-sparse scenes favour the identity basis.
    assert table[("blobs", "dct")] > table[("blobs", "identity")]
    assert table[("points", "identity")] > table[("points", "dct")] - 3.0
