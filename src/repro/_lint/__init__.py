"""Static enforcement of the architectural contracts (the invariant linter).

The four ROADMAP contracts — shared-Φ, bit-fidelity, streamed ≡ in-process,
recon-equivalence — are pinned by runtime test suites, but a suite only
catches a contract violation *after* someone wires the violating code into a
test's execution path.  This package closes that gap the way hardware
frameworks lint netlists before simulation: an AST pass over the source tree
with one rule module per contract, run as ``python -m repro._lint src tests
examples`` (and as part of tier-1 via ``tests/lint/``).

Rules
-----
========== =====================================================================
REPRO001   shared-Φ: CA measurement matrices (dense or factored) are built
           only by :mod:`repro.ca.selection`; outer-XOR assembly and direct
           CA-state expansion anywhere else is a second Φ code path.
REPRO002   no dense Φ in hot paths: ``.phi`` materialisation of a sensing
           operator is allowed only in the operator modules themselves
           (and in tests/benchmarks).
REPRO003   RNG discipline: library code never touches NumPy's global RNG
           state; generators come from seeded ``default_rng``/``derive_seed``.
REPRO004   async hygiene: no blocking calls (``time.sleep``, sync sockets,
           direct capture/solve work) inside ``async def`` in
           :mod:`repro.stream` without executor dispatch.
REPRO005   frozen wire: the v1/v2 chunk and frame layout constants are
           fingerprinted; editing them without introducing a new version
           byte (and re-pinning the fingerprint) is flagged.
REPRO006   timing discipline: clock reads (``time.time``/``monotonic``/
           ``perf_counter``, ``loop.time``) go through the injected
           :class:`repro.telemetry.Clock`; only ``repro/telemetry/`` may
           read the wall/monotonic clock directly.
========== =====================================================================

Suppressions
------------
An intentional exception carries an inline comment **with a justification**::

    phi = operator.phi  # repro-lint: allow=REPRO002 -- tiny block, dense is the reference

A suppression without the ``-- justification`` part is itself reported
(rule ``REPRO000``), so exceptions are always documented in place.
"""

from __future__ import annotations

from repro._lint.engine import (
    Finding,
    LintError,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro._lint.rules import RULES, rule_ids

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "rule_ids",
]
