"""Eq. (1): dynamic range of compressed samples.

``N_B = N_b + log2(M * N)`` — the number of bits needed to represent the sum
of up to ``M*N`` pixel values of ``N_b`` bits each without clipping.  These
helpers evaluate the equation across array sizes and pixel depths (the E6
benchmark table), and empirically verify the clipping behaviour of
under-provisioned accumulators on worst-case and random selections.
"""

from __future__ import annotations

import math


from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


def compressed_sample_bits(pixel_bits: int, rows: int, cols: int) -> int:
    """Eq. (1): ``N_B = N_b + ceil(log2(M*N))``."""
    check_positive("pixel_bits", pixel_bits)
    check_positive("rows", rows)
    check_positive("cols", cols)
    return int(pixel_bits + math.ceil(math.log2(rows * cols)))


def dynamic_range_table(
    pixel_bits_values=(6, 8, 10),
    array_sizes=((8, 8), (16, 16), (32, 32), (64, 64), (128, 128), (256, 256)),
) -> list[dict[str, float]]:
    """Tabulate Eq. (1) and the resulting maximum useful compression ratio.

    The maximum useful ratio is ``N_b / N_B`` — beyond it, transmitting the
    raw image is cheaper than transmitting compressed samples (Section
    III-B's ``R < 0.4`` argument for the 8-bit, 64x64 prototype).
    """
    table = []
    for pixel_bits in pixel_bits_values:
        for rows, cols in array_sizes:
            sample_bits = compressed_sample_bits(pixel_bits, rows, cols)
            table.append(
                {
                    "pixel_bits": int(pixel_bits),
                    "rows": int(rows),
                    "cols": int(cols),
                    "compressed_sample_bits": int(sample_bits),
                    "max_useful_ratio": pixel_bits / sample_bits,
                }
            )
    return table


def clipping_rate(
    register_bits: int,
    pixel_bits: int,
    n_pixels: int,
    *,
    n_trials: int = 500,
    selection_density: float = 0.5,
    seed: SeedLike = None,
    worst_case: bool = False,
) -> float:
    """Fraction of random compressed samples that would clip a ``register_bits`` register.

    Each trial draws ``n_pixels`` uniform pixel codes and a Bernoulli
    selection mask (or, with ``worst_case``, uses all-maximum codes and full
    selection) and checks whether the sum exceeds the register capacity.
    Used to show that Eq. (1) is tight: one bit less clips essentially every
    worst-case sample, while Eq. (1)'s width never clips.
    """
    check_positive("register_bits", register_bits)
    check_positive("pixel_bits", pixel_bits)
    check_positive("n_pixels", n_pixels)
    check_positive("n_trials", n_trials)
    capacity = (1 << register_bits) - 1
    max_code = (1 << pixel_bits) - 1
    if worst_case:
        total = n_pixels * max_code
        return 1.0 if total > capacity else 0.0
    rng = new_rng(seed)
    clipped = 0
    for _ in range(int(n_trials)):
        codes = rng.integers(0, max_code + 1, size=n_pixels)
        mask = rng.random(n_pixels) < selection_density
        if int(codes[mask].sum()) > capacity:
            clipped += 1
    return clipped / float(n_trials)
