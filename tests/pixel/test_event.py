"""Tests for the event latch (V3/V4/V5) and the PixelEvent container."""

import pytest

from repro.pixel.event import EventLatch, PixelEvent


class TestPixelEvent:
    def test_queued_delay_zero_when_unqueued(self):
        event = PixelEvent(row=3, col=5, fire_time=1e-6)
        assert event.queued_delay == 0.0

    def test_queued_delay_positive_when_emitted_late(self):
        event = PixelEvent(row=3, col=5, fire_time=1e-6).with_emit_time(1.5e-6)
        assert event.queued_delay == pytest.approx(0.5e-6)

    def test_with_emit_time_preserves_identity(self):
        event = PixelEvent(row=1, col=2, fire_time=3e-6).with_emit_time(4e-6)
        assert (event.row, event.col, event.fire_time) == (1, 2, 3e-6)

    def test_with_sampled_code(self):
        event = PixelEvent(row=0, col=0, fire_time=1e-6).with_sampled_code(42)
        assert event.sampled_code == 42

    def test_frozen(self):
        event = PixelEvent(row=0, col=0, fire_time=1e-6)
        with pytest.raises(AttributeError):
            event.row = 3


class TestEventLatch:
    def test_initial_state(self):
        latch = EventLatch()
        assert not latch.activated
        assert not latch.driving_bus
        assert not latch.wants_bus

    def test_activation_sets_wants_bus(self):
        latch = EventLatch()
        assert latch.activate() is True
        assert latch.wants_bus

    def test_second_activation_ignored(self):
        """V3 is locked by its feedback until the pixel is reset."""
        latch = EventLatch()
        latch.activate()
        assert latch.activate() is False

    def test_grant_then_terminate_completes_event(self):
        latch = EventLatch()
        latch.activate()
        latch.grant()
        assert latch.driving_bus
        latch.terminate()
        assert latch.completed
        assert not latch.driving_bus
        assert not latch.wants_bus

    def test_grant_without_activation_raises(self):
        with pytest.raises(RuntimeError):
            EventLatch().grant()

    def test_terminate_without_grant_raises(self):
        latch = EventLatch()
        latch.activate()
        with pytest.raises(RuntimeError):
            latch.terminate()

    def test_completed_pixel_does_not_request_bus_again(self):
        latch = EventLatch()
        latch.activate()
        latch.grant()
        latch.terminate()
        assert latch.activate() is False
        assert not latch.wants_bus

    def test_reset_rearms_the_pixel(self):
        latch = EventLatch()
        latch.activate()
        latch.grant()
        latch.terminate()
        latch.reset()
        assert latch.activate() is True


class TestCoutLogic:
    """The 3-input NAND of the paper: C_out low only when C_in low, V4 high, bus high."""

    def test_idle_pixel_passes_token_down(self):
        latch = EventLatch()
        assert latch.c_out(c_in=False, bus_is_high=True) is False

    def test_blocked_when_c_in_high(self):
        latch = EventLatch()
        assert latch.c_out(c_in=True, bus_is_high=True) is True

    def test_blocked_when_bus_low(self):
        latch = EventLatch()
        assert latch.c_out(c_in=False, bus_is_high=False) is True

    def test_blocked_when_pixel_wants_bus(self):
        latch = EventLatch()
        latch.activate()
        assert latch.c_out(c_in=False, bus_is_high=True) is True

    def test_released_after_pixel_completes(self):
        latch = EventLatch()
        latch.activate()
        latch.grant()
        latch.terminate()
        assert latch.c_out(c_in=False, bus_is_high=True) is False
