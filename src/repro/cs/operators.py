"""The sensing operator A = Φ Ψ used by the reconstruction solvers.

Solvers work in the coefficient domain: they look for a sparse coefficient
vector ``z`` such that ``Φ Ψ z ≈ y``.  :class:`SensingOperator` packages the
measurement matrix Φ (dense, possibly centred) together with a
:class:`~repro.cs.dictionaries.Dictionary` Ψ and exposes the products the
solvers need without ever forming the dense ``m x n`` product when Ψ is a
fast transform:

* ``matvec(z)``  — ``Φ Ψ z``
* ``rmatvec(y)`` — ``Ψ* Φ* y``
* ``column(j)``  — the ``j``-th column of A (for greedy solvers)
* ``columns(S)`` — a dense sub-matrix restricted to a support set
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.cs.dictionaries import Dictionary, IdentityDictionary


class SensingOperator:
    """Linear operator ``A = Φ Ψ`` acting on sparse coefficient vectors.

    Parameters
    ----------
    phi:
        Dense measurement matrix, shape ``(m, n_pixels)``.
    dictionary:
        Sparsifying dictionary Ψ; identity when omitted (signal sparse in the
        pixel domain).
    """

    def __init__(self, phi: np.ndarray, dictionary: Optional[Dictionary] = None) -> None:
        phi = np.asarray(phi, dtype=float)
        if phi.ndim != 2:
            raise ValueError(f"phi must be a 2-D matrix, got {phi.ndim} dimensions")
        self.phi = phi
        if dictionary is None:
            side = int(round(np.sqrt(phi.shape[1])))
            if side * side == phi.shape[1]:
                dictionary = IdentityDictionary((side, side))
            else:
                # Generic 1-D signal: treat it as an n x 1 'image'.
                dictionary = IdentityDictionary((phi.shape[1], 1))
        if dictionary.n_pixels != phi.shape[1]:
            raise ValueError(
                f"dictionary dimension {dictionary.n_pixels} does not match "
                f"phi columns {phi.shape[1]}"
            )
        self.dictionary = dictionary

    # -------------------------------------------------------------- shapes
    @property
    def n_samples(self) -> int:
        """Number of measurements (rows of Φ)."""
        return self.phi.shape[0]

    @property
    def n_coefficients(self) -> int:
        """Dimension of the coefficient space (columns of A)."""
        return self.phi.shape[1]

    @property
    def shape(self) -> tuple:
        """Operator shape ``(m, n)``."""
        return (self.n_samples, self.n_coefficients)

    # ------------------------------------------------------------ products
    def matvec(self, coefficients: np.ndarray) -> np.ndarray:
        """Apply ``A``: coefficients -> measurements."""
        image = self.dictionary.synthesize(np.asarray(coefficients, dtype=float))
        return self.phi @ image

    def rmatvec(self, measurements: np.ndarray) -> np.ndarray:
        """Apply ``A*``: measurements -> coefficient-domain correlations."""
        measurements = np.asarray(measurements, dtype=float).reshape(-1)
        if measurements.size != self.n_samples:
            raise ValueError(
                f"measurements must have {self.n_samples} entries, got {measurements.size}"
            )
        back_projection = self.phi.T @ measurements
        return self.dictionary.analyze(back_projection)

    def column(self, index: int) -> np.ndarray:
        """The ``index``-th column of A (Φ applied to one dictionary atom)."""
        atom = self.dictionary.atom(int(index))
        return self.phi @ atom

    def columns(self, indices: Iterable[int]) -> np.ndarray:
        """Dense sub-matrix of A restricted to the given coefficient indices."""
        indices = list(indices)
        result = np.empty((self.n_samples, len(indices)))
        for position, index in enumerate(indices):
            result[:, position] = self.column(index)
        return result

    def dense(self) -> np.ndarray:
        """Explicit dense A.  Only sensible for small problems (tests, blocks)."""
        return self.columns(range(self.n_coefficients))

    # --------------------------------------------------------------- norms
    def operator_norm(self, *, n_iterations: int = 50, seed: int = 0) -> float:
        """Largest singular value of A, estimated by power iteration.

        The ISTA/FISTA/IHT step sizes are set from this value.
        """
        rng = np.random.default_rng(seed)
        vector = rng.standard_normal(self.n_coefficients)
        vector /= np.linalg.norm(vector)
        sigma = 0.0
        for _ in range(max(1, int(n_iterations))):
            product = self.rmatvec(self.matvec(vector))
            norm = np.linalg.norm(product)
            if norm == 0.0:
                return 0.0
            vector = product / norm
            sigma = np.sqrt(norm)
        return float(sigma)

    # -------------------------------------------------------------- images
    def coefficients_to_image(self, coefficients: np.ndarray) -> np.ndarray:
        """Convenience: synthesise coefficients and reshape to the image grid."""
        image = self.dictionary.synthesize(np.asarray(coefficients, dtype=float))
        return image.reshape(self.dictionary.shape)

    def image_to_coefficients(self, image: np.ndarray) -> np.ndarray:
        """Convenience: analyse an image into its coefficient vector."""
        return self.dictionary.analyze(np.asarray(image, dtype=float).reshape(-1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SensingOperator(m={self.n_samples}, n={self.n_coefficients}, "
            f"dictionary={type(self.dictionary).__name__})"
        )
