"""Deterministic fault injection for streaming transports.

:class:`LossyTransport` wraps any :class:`~repro.stream.transport.Transport`
and subjects the sender's byte slices to seeded drop / truncate / duplicate /
reorder faults — the adversary the loss-resilience layer is built against,
and the harness the fault-injection suite drives.  Every decision comes from
one :func:`repro.utils.rng.new_rng` generator, so a ``(seed, rates)`` pair
replays the exact same fault pattern on every run, and the transport records
*which* send indices it hit so tests can assert the receiver's loss metadata
matches the injected loss exactly.

The session-durability layer adds three more adversaries, each recording
exactly what it did so recovery tests can assert the healed stream's
counters equal the injected faults:

* :class:`GilbertElliottTransport` — the classic two-state Markov burst-loss
  channel (a *good* state that rarely drops and a *bad* state that mostly
  does), the model NACK-driven selective repeat is measured against;
* :class:`StallingTransport` — delivers normally until a scripted send
  index, then silently holds every slice until :meth:`~StallingTransport.release`
  (or close) — what a wedged middlebox looks like to the receiver's frame
  deadlines;
* :class:`DisconnectingTransport` — kills the channel at a scripted send
  index (closing the inner transport so the peer sees EOF), the adversary
  the reconnect-with-resume path heals.

Because the camera node sends exactly one chunk per ``send`` call, the fault
granularity is the chunk: a dropped slice is a lost chunk, a truncated slice
is a corrupted one, and the recorded send indices line up one-to-one with
chunk sequence numbers.

Reordering needs a *next* slice to swap with, so the transport holds each
slice for one send: the fault decision for slice ``k`` is applied when slice
``k + 1`` arrives, and ``close()`` flushes the final held slice **intact** —
the stream-end chunk always survives, mirroring a real channel where the
sender would retransmit its terminal control message until acknowledged.
``protect_first=True`` (default) likewise exempts slice 0, the stream header,
without which no receiver could do anything at all.
"""

from __future__ import annotations

from repro.stream.transport import Transport, TransportClosedError
from repro.utils.rng import derive_seed, new_rng


class LossyTransport:
    """A transport wrapper injecting seeded chunk-level faults.

    Parameters
    ----------
    inner:
        The transport actually carrying the surviving slices.
    seed:
        Base seed; the fault generator is derived via
        :func:`repro.utils.rng.derive_seed` so it cannot couple with any
        other randomness in an experiment.
    drop_rate, truncate_rate, duplicate_rate, reorder_rate:
        Per-slice fault probabilities; one uniform draw per slice picks at
        most one fault, so the rates must sum to at most 1.
    protect_first:
        Deliver slice 0 (the stream header) intact regardless of the draw.

    Attributes
    ----------
    dropped, truncated, duplicated, reordered:
        Send indices (0-based, in the order the sender called ``send``) each
        fault actually hit — the ground truth the fault-injection tests
        compare receiver-side loss metadata against.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        seed: int,
        drop_rate: float = 0.0,
        truncate_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        protect_first: bool = True,
    ) -> None:
        rates = (drop_rate, truncate_rate, duplicate_rate, reorder_rate)
        if any(rate < 0.0 for rate in rates) or sum(rates) > 1.0:
            raise ValueError(
                "fault rates must be non-negative and sum to at most 1, got "
                f"drop={drop_rate}, truncate={truncate_rate}, "
                f"duplicate={duplicate_rate}, reorder={reorder_rate}"
            )
        self.inner = inner
        self.drop_rate = float(drop_rate)
        self.truncate_rate = float(truncate_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.reorder_rate = float(reorder_rate)
        self.protect_first = bool(protect_first)
        self._rng = new_rng(derive_seed(seed, "lossy-transport"))
        self._held: tuple[int, bytes] | None = None
        self.n_sends = 0
        self.dropped: list[int] = []
        self.truncated: list[int] = []
        self.duplicated: list[int] = []
        self.reordered: list[int] = []

    @property
    def n_faults(self) -> int:
        """Total slices hit by any fault."""
        return (
            len(self.dropped)
            + len(self.truncated)
            + len(self.duplicated)
            + len(self.reordered)
        )

    async def _flush_held(self, incoming: tuple[int, bytes] | None) -> None:
        """Apply the fault draw to the held slice and deliver the outcome.

        ``incoming`` is the slice that triggered the flush (``None`` on
        close); a *reorder* delivers it first and the held slice after,
        consuming both.
        """
        if self._held is None:
            if incoming is not None:
                self._held = incoming
            return
        index, data = self._held
        self._held = incoming
        if self.protect_first and index == 0:
            await self.inner.send(data)
            return
        draw = float(self._rng.random())
        if draw < self.drop_rate:
            self.dropped.append(index)
            return
        draw -= self.drop_rate
        if draw < self.truncate_rate:
            if len(data) > 1:
                self.truncated.append(index)
                cut = int(self._rng.integers(1, len(data)))
                await self.inner.send(data[:cut])
            else:
                await self.inner.send(data)
            return
        draw -= self.truncate_rate
        if draw < self.duplicate_rate:
            self.duplicated.append(index)
            await self.inner.send(data)
            await self.inner.send(data)
            return
        draw -= self.duplicate_rate
        if draw < self.reorder_rate and incoming is not None:
            self.reordered.append(index)
            self._held = None
            await self.inner.send(incoming[1])
            await self.inner.send(data)
            return
        await self.inner.send(data)

    async def send(self, data: bytes) -> None:
        """Hold this slice and deliver its predecessor through the fault draw."""
        incoming = (self.n_sends, bytes(data))
        self.n_sends += 1
        await self._flush_held(incoming)

    async def recv(self) -> bytes | None:
        """Pass-through to the inner transport (feedback path is unfaulted)."""
        return await self.inner.recv()

    async def close(self) -> None:
        """Deliver the final held slice intact, then close the inner transport."""
        held, self._held = self._held, None
        if held is not None:
            await self.inner.send(held[1])
        await self.inner.close()


class GilbertElliottTransport:
    """Seeded two-state Markov burst-loss channel (Gilbert–Elliott model).

    The channel is in a *good* or *bad* state; each send first draws the
    state transition (``p_good_to_bad`` / ``p_bad_to_good``), then drops the
    slice with the state's loss probability (``loss_good`` / ``loss_bad``).
    Runs of the bad state produce the correlated loss bursts that defeat
    single-parity repair — the regime NACK-driven selective repeat exists
    for.  Like :class:`LossyTransport`, each slice is held for one send so
    ``close()`` can always deliver the final slice (the stream-end chunk)
    intact, and slice 0 (the stream header) is exempt by default.

    Attributes
    ----------
    dropped:
        Send indices the channel swallowed — the injected ground truth.
    state_trace:
        The state ("good"/"bad") each send index was judged under.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        seed: int,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.4,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        protect_first: bool = True,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        self.inner = inner
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self.protect_first = bool(protect_first)
        self._rng = new_rng(derive_seed(seed, "gilbert-elliott-transport"))
        self._bad = False
        self._held: tuple[int, bytes] | None = None
        self.n_sends = 0
        self.dropped: list[int] = []
        self.state_trace: list[str] = []

    @property
    def n_bursts(self) -> int:
        """Distinct loss bursts (runs of consecutive dropped indices)."""
        bursts = 0
        previous = None
        for index in self.dropped:
            if previous is None or index != previous + 1:
                bursts += 1
            previous = index
        return bursts

    async def _flush_held(self, incoming: tuple[int, bytes] | None) -> None:
        if self._held is None:
            if incoming is not None:
                self._held = incoming
            return
        index, data = self._held
        self._held = incoming
        # Walk the Markov chain once per judged slice, whether or not the
        # outcome can drop it — the state sequence must not depend on
        # protect_first.
        if self._bad:
            if float(self._rng.random()) < self.p_bad_to_good:
                self._bad = False
        elif float(self._rng.random()) < self.p_good_to_bad:
            self._bad = True
        self.state_trace.append("bad" if self._bad else "good")
        loss = self.loss_bad if self._bad else self.loss_good
        if self.protect_first and index == 0:
            await self.inner.send(data)
            return
        if float(self._rng.random()) < loss:
            self.dropped.append(index)
            return
        await self.inner.send(data)

    async def send(self, data: bytes) -> None:
        """Hold this slice and deliver its predecessor through the channel."""
        incoming = (self.n_sends, bytes(data))
        self.n_sends += 1
        await self._flush_held(incoming)

    async def recv(self) -> bytes | None:
        """Pass-through to the inner transport (feedback path is unfaulted)."""
        return await self.inner.recv()

    async def close(self) -> None:
        """Deliver the final held slice intact, then close the inner transport."""
        held, self._held = self._held, None
        if held is not None:
            await self.inner.send(held[1])
        await self.inner.close()


class StallingTransport:
    """A transport that wedges at a scripted send index.

    The first ``stall_after`` slices flow normally; every later slice is
    silently parked in :attr:`stalled` (the sender's ``send`` returns as if
    delivered — exactly what a wedged middlebox or a full kernel buffer
    behind a dead peer looks like).  :meth:`release` delivers the parked
    slices in order and un-wedges the transport; ``close()`` releases
    whatever is still held so no bytes are silently lost.

    Attributes
    ----------
    stalled:
        Send indices parked while wedged (ground truth for deadline tests).
    n_released:
        Slices delivered by :meth:`release`/``close`` after being parked.
    """

    def __init__(self, inner: Transport, *, stall_after: int) -> None:
        if stall_after < 0:
            raise ValueError(f"stall_after must be >= 0, got {stall_after}")
        self.inner = inner
        self.stall_after = int(stall_after)
        self._parked: list[bytes] = []
        self._wedged = False
        self.n_sends = 0
        self.stalled: list[int] = []
        self.n_released = 0

    async def send(self, data: bytes) -> None:
        """Deliver, or silently park once the stall index is reached."""
        index = self.n_sends
        self.n_sends += 1
        if self._wedged or index >= self.stall_after:
            self._wedged = True
            self.stalled.append(index)
            self._parked.append(bytes(data))
            return
        await self.inner.send(data)

    async def release(self) -> int:
        """Deliver every parked slice in order and un-wedge; returns the count."""
        parked, self._parked = self._parked, []
        self._wedged = False
        for data in parked:
            await self.inner.send(data)
        self.n_released += len(parked)
        return len(parked)

    async def recv(self) -> bytes | None:
        """Pass-through to the inner transport (feedback path is unfaulted)."""
        return await self.inner.recv()

    async def close(self) -> None:
        """Release anything still parked, then close the inner transport."""
        await self.release()
        await self.inner.close()


class DisconnectingTransport:
    """A transport that dies at a scripted send index.

    Send ``disconnect_after`` raises
    :class:`~repro.stream.transport.TransportClosedError` (as do all later
    sends) after closing the inner transport, so the receiving peer sees a
    real EOF at the same moment — the mid-stream kill the
    reconnect-with-resume path is tested against.

    Attributes
    ----------
    disconnect_send:
        The send index the cut landed on (``None`` until it happens).
    n_refused:
        Sends refused after the cut (the sender retrying into a dead pipe).
    """

    def __init__(self, inner: Transport, *, disconnect_after: int) -> None:
        if disconnect_after < 1:
            raise ValueError(
                f"disconnect_after must be >= 1, got {disconnect_after}"
            )
        self.inner = inner
        self.disconnect_after = int(disconnect_after)
        self.n_sends = 0
        self.disconnect_send: int | None = None
        self.n_refused = 0

    @property
    def disconnected(self) -> bool:
        """True once the scripted cut has happened."""
        return self.disconnect_send is not None

    async def send(self, data: bytes) -> None:
        """Deliver until the scripted cut; dead pipe afterwards."""
        index = self.n_sends
        self.n_sends += 1
        if self.disconnected:
            self.n_refused += 1
            raise TransportClosedError(
                "transport was disconnected mid-stream (scripted fault)"
            )
        if index >= self.disconnect_after:
            self.disconnect_send = index
            await self.inner.close()
            raise TransportClosedError(
                f"transport disconnected at send {index} (scripted fault)"
            )
        await self.inner.send(data)

    async def recv(self) -> bytes | None:
        """Pass-through until the cut; EOF afterwards."""
        if self.disconnected:
            return None
        return await self.inner.recv()

    async def close(self) -> None:
        """Close the inner transport (idempotent after a cut)."""
        await self.inner.close()
