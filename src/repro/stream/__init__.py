"""Live streaming of compressive captures: node → wire → receiver.

The paper's motivating scenario — an autonomous camera node delivering
images "over a network under a restricted data rate" by shipping compressed
samples plus only the CA seed — implemented as a working service on top of
the capture engines:

* :mod:`repro.stream.protocol` — the chunked wire protocol (v2 frames with
  capture statistics, seed-once GOPs, incremental chunk parsing);
* :mod:`repro.stream.transport` — bounded loopback and TCP byte transports,
  both exerting real backpressure on the sender;
* :mod:`repro.stream.node` — :class:`CameraNode`, the asyncio capture-and-
  send loop with its bits-per-frame :class:`BitrateGovernor`;
* :mod:`repro.stream.session` — :class:`StreamSession`, the per-stream chunk
  FSM (seed chains, tile barriers, incremental reconstruction state);
* :mod:`repro.stream.hub` — :class:`ReceiverHub`, the fleet-scale ingest
  service muxing many node connections over one event loop, with
  round-robin solve fairness (:class:`FairSolveScheduler`) and two-level
  backpressure high-watermarks;
* :mod:`repro.stream.receiver` — :class:`StreamReceiver`, the single-node
  receiver (a thin one-session hub), decoding chunks as they arrive and
  reconstructing incrementally (per tile, per frame), byte-identical to the
  in-process reconstruction pipeline;
* :mod:`repro.stream.fault` — the seeded chaos adversaries:
  :class:`LossyTransport` (drop / truncate / duplicate / reorder),
  :class:`GilbertElliottTransport` (two-state burst loss),
  :class:`StallingTransport` and :class:`DisconnectingTransport` —
  everything the resilient receive path, the closed rate-control loop and
  the self-healing (NACK / resume / deadline) machinery are tested against.
"""

from repro.stream.fault import (
    DisconnectingTransport,
    GilbertElliottTransport,
    LossyTransport,
    StallingTransport,
)
from repro.stream.hub import (
    DuplicateStreamIdError,
    FairSolveScheduler,
    HubCapacityError,
    HubPortInUseError,
    HubStats,
    ReceiverHub,
    SessionResumeError,
)
from repro.stream.node import (
    BitrateGovernor,
    CameraNode,
    ChannelBudgetError,
    ReconnectExhaustedError,
    ReconnectSupervisor,
    RetransmitBuffer,
    StreamStats,
)
from repro.stream.protocol import (
    CONTROL_CHUNK_TYPES,
    MAX_NACK_SEQUENCES,
    Chunk,
    ChunkDecoder,
    ChunkType,
    ControlAck,
    FrameData,
    FrameParity,
    FrameSegment,
    NackRequest,
    RateAdvice,
    SessionResume,
    StreamHeader,
    StreamProtocolError,
    advance_seed_state,
    decode_control_ack,
    decode_frame_parity,
    decode_frame_segment,
    decode_nack_request,
    decode_rate_advice,
    decode_session_resume,
    encode_chunk,
    encode_control_ack,
    encode_frame_parity,
    encode_frame_segment,
    encode_nack_request,
    encode_rate_advice,
    encode_session_resume,
)
from repro.stream.receiver import (
    ReceivedFrame,
    StreamReceiver,
    StreamResult,
    receive_stream,
)
from repro.stream.session import FrameLossReport, SessionStats, StreamSession
from repro.stream.transport import (
    DuplexTransport,
    LoopbackTransport,
    TcpTransport,
    TransportClosedError,
    connect_tcp,
    loopback_duplex_pair,
    serve_tcp,
)

__all__ = [
    "CameraNode",
    "BitrateGovernor",
    "ChannelBudgetError",
    "StreamStats",
    "StreamReceiver",
    "StreamResult",
    "ReceivedFrame",
    "receive_stream",
    "StreamSession",
    "SessionStats",
    "FrameLossReport",
    "ReceiverHub",
    "FairSolveScheduler",
    "HubStats",
    "DuplicateStreamIdError",
    "HubCapacityError",
    "HubPortInUseError",
    "SessionResumeError",
    "RetransmitBuffer",
    "ReconnectSupervisor",
    "ReconnectExhaustedError",
    "LoopbackTransport",
    "DuplexTransport",
    "loopback_duplex_pair",
    "LossyTransport",
    "GilbertElliottTransport",
    "StallingTransport",
    "DisconnectingTransport",
    "TcpTransport",
    "TransportClosedError",
    "connect_tcp",
    "serve_tcp",
    "Chunk",
    "ChunkType",
    "ChunkDecoder",
    "FrameData",
    "FrameSegment",
    "FrameParity",
    "ControlAck",
    "RateAdvice",
    "NackRequest",
    "SessionResume",
    "CONTROL_CHUNK_TYPES",
    "MAX_NACK_SEQUENCES",
    "StreamHeader",
    "StreamProtocolError",
    "advance_seed_state",
    "encode_chunk",
    "encode_frame_segment",
    "decode_frame_segment",
    "encode_frame_parity",
    "decode_frame_parity",
    "encode_control_ack",
    "decode_control_ack",
    "encode_rate_advice",
    "decode_rate_advice",
    "encode_nack_request",
    "decode_nack_request",
    "encode_session_resume",
    "decode_session_resume",
]
