"""Convex-programming reference solver: equality-constrained basis pursuit.

The paper frames reconstruction as "convex optimization can lead to a unique
solution"; the canonical convex program is basis pursuit,
``min ||z||₁  s.t.  A z = y``, which can be written as a linear program by
splitting ``z`` into its positive and negative parts.  This formulation is
only practical for small problems (a few hundred unknowns), so the library
uses it as the reference solver for block-based CS and for the solver
cross-validation tests, not for full 64x64 frames.
"""

from __future__ import annotations


import numpy as np
from scipy.optimize import linprog

from repro.cs.operators import SensingOperator
from repro.cs.solvers.result import SolverResult, as_operator, check_measurements
from repro.utils.validation import check_positive


def basis_pursuit(
    operator_or_matrix: SensingOperator | np.ndarray,
    measurements: np.ndarray,
    *,
    max_dimension: int = 4096,
    noise_tolerance: float = 0.0,
) -> SolverResult:
    """Solve ``min ||z||₁ s.t. A z = y`` (or ``|A z - y| <= noise_tolerance``).

    Parameters
    ----------
    max_dimension:
        Guard rail: refuse problems with more coefficients than this, since
        the LP has ``2n`` variables and dense constraint rows.
    noise_tolerance:
        When positive, the equality constraints are relaxed to a box of this
        half-width (basis pursuit denoising in l∞ form), which is more robust
        for quantised measurements.
    """
    operator = as_operator(operator_or_matrix)
    measurements = check_measurements(operator, measurements)
    check_positive("max_dimension", max_dimension)
    check_positive("noise_tolerance", noise_tolerance, allow_zero=True)
    n = operator.n_coefficients
    if n > max_dimension:
        raise ValueError(
            f"basis_pursuit is limited to {max_dimension} coefficients, got {n}; "
            "use fista/omp for larger problems"
        )
    dense = operator.dense()
    # Variables: z = p - q with p, q >= 0; minimise sum(p) + sum(q).
    cost = np.ones(2 * n)
    stacked = np.hstack([dense, -dense])
    if noise_tolerance > 0.0:
        a_ub = np.vstack([stacked, -stacked])
        b_ub = np.concatenate(
            [measurements + noise_tolerance, -(measurements - noise_tolerance)]
        )
        result = linprog(
            cost,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(0, None)] * (2 * n),
            method="highs",
        )
    else:
        result = linprog(
            cost,
            A_eq=stacked,
            b_eq=measurements,
            bounds=[(0, None)] * (2 * n),
            method="highs",
        )
    if not result.success:
        coefficients = np.zeros(n)
        residual = float(np.linalg.norm(measurements))
        return SolverResult(
            coefficients=coefficients,
            n_iterations=int(result.nit) if hasattr(result, "nit") else 0,
            converged=False,
            residual_norm=residual,
            history=[residual],
        )
    solution = result.x[:n] - result.x[n:]
    residual = float(np.linalg.norm(measurements - dense @ solution))
    return SolverResult(
        coefficients=solution,
        n_iterations=int(result.nit) if hasattr(result, "nit") else 0,
        converged=True,
        residual_norm=residual,
        history=[residual],
    )
