"""Ablation studies of the design choices called out in DESIGN.md.

The paper fixes several architectural knobs without exploring them (it is a
design paper, not a design-space study).  These helpers quantify what each
knob buys, so the ablation benchmarks can show the defaults are sensible:

* the CA rule (30 vs 90/110/184) and the number of CA steps per sample,
* the pixel depth / counter width ``N_b`` (6, 8, 10 bits),
* the event duration (termination delay) against queueing and LSB errors,
* the sparsifying dictionary used at the receiver.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cs.matrices import ca_xor_matrix
from repro.cs.metrics import psnr
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.pixel.event import PixelEvent
from repro.recon.pipeline import reconstruct_frame, reconstruct_samples
from repro.sensor.column_bus import ColumnBusArbiter
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.utils.images import image_to_vector
from repro.utils.rng import derive_seed, new_rng
from repro.utils.validation import check_positive


def _quantize(scene: np.ndarray, pixel_bits: int) -> np.ndarray:
    levels = (1 << pixel_bits) - 1
    return np.round(np.clip(scene, 0.0, 1.0) * levels)


def ablate_ca_rule(
    rules: Sequence[int] = (30, 90, 110, 184),
    *,
    image_shape=(32, 32),
    compression_ratio: float = 0.3,
    scene_kind: str = "blobs",
    max_iterations: int = 150,
    seed: int = 2018,
) -> list[dict[str, float]]:
    """Reconstruction quality when the selection CA runs a different rule."""
    scene = _quantize(make_scene(scene_kind, image_shape, seed=seed), 8)
    n_samples = int(round(compression_ratio * scene.size))
    vector = image_to_vector(scene)
    rows = []
    for rule in rules:
        phi = ca_xor_matrix(
            n_samples, image_shape, rule=rule, seed=derive_seed(seed, "rule", rule), warmup_steps=8
        )
        samples = phi @ vector
        result = reconstruct_samples(
            phi, samples, image_shape, max_iterations=max_iterations, reference=scene
        )
        rows.append(
            {
                "rule": int(rule),
                "psnr_db": result.metrics["psnr_db"],
                "distinct_rows": float(len({row.tobytes() for row in phi.astype(np.uint8)})),
                "n_samples": float(n_samples),
            }
        )
    return rows


def ablate_steps_per_sample(
    steps_values: Sequence[int] = (1, 2, 4, 8),
    *,
    image_shape=(32, 32),
    compression_ratio: float = 0.3,
    scene_kind: str = "blobs",
    max_iterations: int = 150,
    seed: int = 2018,
) -> list[dict[str, float]]:
    """Does mixing the CA longer between samples improve Φ?  (It barely should.)"""
    scene = _quantize(make_scene(scene_kind, image_shape, seed=seed), 8)
    n_samples = int(round(compression_ratio * scene.size))
    vector = image_to_vector(scene)
    rows = []
    for steps in steps_values:
        check_positive("steps_per_sample", steps)
        phi = ca_xor_matrix(
            n_samples,
            image_shape,
            steps_per_sample=int(steps),
            seed=derive_seed(seed, "steps", steps),
            warmup_steps=8,
        )
        samples = phi @ vector
        result = reconstruct_samples(
            phi, samples, image_shape, max_iterations=max_iterations, reference=scene
        )
        rows.append({"steps_per_sample": int(steps), "psnr_db": result.metrics["psnr_db"]})
    return rows


def ablate_pixel_depth(
    pixel_bits_values: Sequence[int] = (6, 8, 10),
    *,
    rows: int = 32,
    cols: int = 32,
    compression_ratio: float = 0.3,
    scene_kind: str = "blobs",
    max_iterations: int = 150,
    seed: int = 2018,
) -> list[dict[str, float]]:
    """Counter depth ``N_b``: quality and bit cost of 6/8/10-bit conversion.

    Deeper counters resolve the time encoding more finely but inflate every
    compressed sample by the same number of extra bits (Eq. 1).
    """
    scene = make_scene(scene_kind, (rows, cols), seed=seed)
    conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
    current = conversion.convert(scene)
    table = []
    for pixel_bits in pixel_bits_values:
        config = SensorConfig(rows=rows, cols=cols, pixel_bits=int(pixel_bits))
        imager = CompressiveImager(config, seed=seed)
        n_samples = int(round(compression_ratio * config.n_pixels))
        frame = imager.capture(current, n_samples=n_samples)
        result = reconstruct_frame(frame, max_iterations=max_iterations)
        # Compare in a common 8-bit scene domain: invert the reciprocal map by
        # normalising both images to [0, 255].
        recon = result.image
        recon_scaled = (recon - recon.min()) / (np.ptp(recon) + 1e-12) * 255.0
        reference_codes = frame.digital_image.astype(float)
        reference_scaled = (
            (reference_codes - reference_codes.min())
            / (np.ptp(reference_codes) + 1e-12) * 255.0
        )
        table.append(
            {
                "pixel_bits": int(pixel_bits),
                "sample_bits": config.compressed_sample_bits,
                "bits_per_frame": n_samples * config.compressed_sample_bits,
                "psnr_code_domain_db": result.metrics["psnr_db"],
                "psnr_normalised_db": psnr(reference_scaled, recon_scaled),
            }
        )
    return table


def ablate_event_duration(
    durations: Sequence[float] = (1e-9, 5e-9, 20e-9, 80e-9),
    *,
    n_events: int = 32,
    window: float = 10.67e-6,
    n_trials: int = 200,
    seed: int = 2018,
) -> list[dict[str, float]]:
    """Event duration vs queueing: longer termination delays congest the bus."""
    rng = new_rng(seed)
    rows = []
    for duration in durations:
        check_positive("event_duration", duration)
        queued = 0
        max_delay = 0.0
        total = 0
        for _ in range(int(n_trials)):
            times = rng.uniform(0.0, window, size=n_events)
            events = [PixelEvent(row=r, col=0, fire_time=t) for r, t in enumerate(times)]
            result = ColumnBusArbiter(event_duration=float(duration)).arbitrate(events)
            queued += result.n_queued
            total += result.n_events
            max_delay = max(max_delay, result.max_queue_delay)
        rows.append(
            {
                "event_duration_ns": float(duration) * 1e9,
                "queued_fraction": queued / float(total),
                "max_queue_delay_ns": max_delay * 1e9,
            }
        )
    return rows


def ablate_dictionary(
    dictionaries: Sequence[str] = ("dct", "haar", "identity"),
    *,
    image_shape=(32, 32),
    compression_ratio: float = 0.3,
    scene_kinds: Sequence[str] = ("blobs", "text", "points"),
    max_iterations: int = 150,
    seed: int = 2018,
) -> list[dict[str, float]]:
    """Receiver-side dictionary choice across scene statistics."""
    rows = []
    for scene_kind in scene_kinds:
        scene = _quantize(make_scene(scene_kind, image_shape, seed=seed), 8)
        n_samples = int(round(compression_ratio * scene.size))
        phi = ca_xor_matrix(
            n_samples, image_shape, seed=derive_seed(seed, scene_kind), warmup_steps=8
        )
        samples = phi @ image_to_vector(scene)
        for dictionary in dictionaries:
            result = reconstruct_samples(
                phi, samples, image_shape,
                dictionary=dictionary, max_iterations=max_iterations, reference=scene,
            )
            rows.append(
                {
                    "scene": scene_kind,
                    "dictionary": dictionary,
                    "psnr_db": result.metrics["psnr_db"],
                }
            )
    return rows
