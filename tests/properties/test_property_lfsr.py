"""Property-based tests for the LFSR substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lfsr.lfsr import FibonacciLFSR, GaloisLFSR


@settings(max_examples=40, deadline=None)
@given(n_bits=st.integers(4, 24), seed=st.integers(0, 10_000), n=st.integers(1, 200))
def test_fibonacci_state_never_zero_and_bits_binary(n_bits, seed, n):
    lfsr = FibonacciLFSR(n_bits, seed=seed)
    bits = lfsr.bits(n)
    assert set(np.unique(bits)).issubset({0, 1})
    assert lfsr.state != 0


@settings(max_examples=40, deadline=None)
@given(n_bits=st.integers(4, 24), seed=st.integers(0, 10_000), n=st.integers(1, 200))
def test_galois_state_never_zero(n_bits, seed, n):
    lfsr = GaloisLFSR(n_bits, seed=seed)
    lfsr.bits(n)
    assert lfsr.state != 0


@settings(max_examples=30, deadline=None)
@given(n_bits=st.integers(4, 20), seed=st.integers(0, 10_000), n=st.integers(1, 100))
def test_reset_gives_identical_replay(n_bits, seed, n):
    lfsr = FibonacciLFSR(n_bits, seed=seed)
    first = lfsr.bits(n)
    lfsr.reset()
    assert np.array_equal(first, lfsr.bits(n))


@settings(max_examples=20, deadline=None)
@given(n_bits=st.integers(4, 10), state=st.integers(1, 2**10 - 1))
def test_full_period_visits_each_state_once(n_bits, state):
    state &= (1 << n_bits) - 1
    if state == 0:
        state = 1
    lfsr = FibonacciLFSR(n_bits, state=state)
    seen = set()
    for _ in range(lfsr.period):
        assert lfsr.state not in seen
        seen.add(lfsr.state)
        lfsr.step()
    assert len(seen) == lfsr.period
