"""Sensor-level architecture model (Fig. 2).

This package assembles the pixel model, the CA selection generator and the
column read-out chain into a full behavioural simulator of the prototype
chip:

* :mod:`repro.sensor.config` — :class:`SensorConfig`, the single place where
  the Table II parameters live, with every derived quantity (bit widths,
  conversion window, maximum compressed-sample rate) computed from them.
* :mod:`repro.sensor.column_bus` — the shared column bus with the
  ``C_in``/``C_out`` token protocol and the global event-termination pulse.
* :mod:`repro.sensor.tdc` — the global-counter time-to-digital converter and
  its ±1 LSB late-detection error model.
* :mod:`repro.sensor.sample_add` — the per-column 'Sample & Add' accumulators
  and the final adder producing the 20-bit compressed sample.
* :mod:`repro.sensor.power` — parametric power/area model used to regenerate
  Table II.
* :mod:`repro.sensor.imager` — :class:`CompressiveImager`, the top-level
  object: scene in, compressed samples (plus the CA seed) out.
* :mod:`repro.sensor.shard` — :class:`TiledSensorArray`, a mosaic of
  independent imager tiles capturing one large scene concurrently.
"""

from repro.sensor.column_bus import ColumnBusArbiter, ColumnControlUnit
from repro.sensor.config import SensorConfig
from repro.sensor.imager import FLOAT32_SAMPLE_ATOL, CompressedFrame, CompressiveImager
from repro.sensor.power import PowerAreaModel, chip_feature_summary
from repro.sensor.sample_add import ColumnAccumulator, SampleAndAdd
from repro.sensor.shard import (
    TiledCaptureResult,
    TiledSensorArray,
    TileSlot,
    merge_tile_statistics,
    tile_grid,
)
from repro.sensor.tdc import GlobalCounterTDC
from repro.sensor.video import VideoCaptureResult, VideoSequencer

__all__ = [
    "SensorConfig",
    "ColumnBusArbiter",
    "ColumnControlUnit",
    "GlobalCounterTDC",
    "ColumnAccumulator",
    "SampleAndAdd",
    "PowerAreaModel",
    "chip_feature_summary",
    "CompressiveImager",
    "CompressedFrame",
    "FLOAT32_SAMPLE_ATOL",
    "VideoSequencer",
    "VideoCaptureResult",
    "TiledSensorArray",
    "TiledCaptureResult",
    "TileSlot",
    "merge_tile_statistics",
    "tile_grid",
]
