"""E6 — Eq. (1): dynamic range of compressed samples.

Regenerates the bit-budget table ``N_B = N_b + log2(M N)`` across pixel depths
and array sizes, verifies the prototype's 14-bit column / 20-bit sample
widths, and shows empirically that Eq. (1) is tight: the prescribed register
never clips, one bit less clips the worst case.
"""

import pytest

from benchmarks.conftest import print_table
from repro.analysis.dynamic_range import clipping_rate, compressed_sample_bits, dynamic_range_table
from repro.sensor.sample_add import AccumulatorOverflowError, SampleAndAdd


def test_eq1_bit_budget_table(benchmark):
    table = benchmark(dynamic_range_table)
    rows = [row for row in table if row["pixel_bits"] == 8]
    print_table("Eq. (1) — compressed-sample bit budget (8-bit pixels)", rows)

    prototype = next(r for r in rows if (r["rows"], r["cols"]) == (64, 64))
    assert prototype["compressed_sample_bits"] == 20
    assert prototype["max_useful_ratio"] == pytest.approx(0.4)
    # The paper's block-CS remark: even an 8x8 block needs 14 bits.
    block = next(r for r in rows if (r["rows"], r["cols"]) == (8, 8))
    assert block["compressed_sample_bits"] == 14


def test_eq1_register_widths_are_tight(benchmark):
    def clipping_summary():
        return {
            "20-bit full frame, worst case": clipping_rate(20, 8, 4096, worst_case=True),
            "19-bit full frame, worst case": clipping_rate(19, 8, 4096, worst_case=True),
            "14-bit column, worst case": clipping_rate(14, 8, 64, worst_case=True),
            "13-bit column, worst case": clipping_rate(13, 8, 64, worst_case=True),
            "20-bit full frame, random selections": clipping_rate(
                20, 8, 4096, n_trials=200, seed=1
            ),
        }

    summary = benchmark.pedantic(clipping_summary, rounds=1, iterations=1)
    print_table(
        "Eq. (1) — clipping rates",
        [{"register": k, "clip_rate": v} for k, v in summary.items()],
    )
    assert summary["20-bit full frame, worst case"] == 0.0
    assert summary["19-bit full frame, worst case"] == 1.0
    assert summary["14-bit column, worst case"] == 0.0
    assert summary["13-bit column, worst case"] == 1.0
    assert summary["20-bit full frame, random selections"] == 0.0


def test_eq1_hardware_adder_tree_respects_widths(benchmark):
    """The Sample & Add register model itself enforces Eq. (1)."""

    def worst_case_sum():
        adder = SampleAndAdd(n_columns=64, column_bits=14, sample_bits=20)
        for col in range(64):
            for _ in range(64):
                adder.add_code(col, 255)
        return adder.compressed_sample()

    total = benchmark.pedantic(worst_case_sum, rounds=1, iterations=1)
    assert total == 4096 * 255
    undersized = SampleAndAdd(n_columns=64, column_bits=14, sample_bits=19)
    for col in range(64):
        for _ in range(64):
            undersized.add_code(col, 255)
    with pytest.raises(AccumulatorOverflowError):
        undersized.compressed_sample()
