"""Tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_binary_array,
    check_choice,
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive_int(self):
        check_positive("x", 3)

    def test_accepts_positive_float(self):
        check_positive("x", 0.5)

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_accepts_zero_when_allowed(self):
        check_positive("x", 0, allow_zero=True)

    def test_rejects_negative_even_when_zero_allowed(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, allow_zero=True)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("x", "5")


class TestCheckInRange:
    def test_inclusive_bounds_accepted(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_interior_value_accepted_in_both_modes(self):
        check_in_range("x", 0.5, 0.0, 1.0)
        check_in_range("x", 0.5, 0.0, 1.0, inclusive=False)


class TestCheckProbability:
    def test_accepts_unit_interval(self):
        check_probability("p", 0.0)
        check_probability("p", 0.5)
        check_probability("p", 1.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 4096])
    def test_accepts_powers_of_two(self, value):
        check_power_of_two("n", value)

    @pytest.mark.parametrize("value", [0, 3, 6, 100, -8])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            check_power_of_two("n", value)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_power_of_two("n", 4.0)


class TestCheckShape:
    def test_exact_shape_accepted(self):
        check_shape("a", np.zeros((3, 4)), (3, 4))

    def test_wildcard_axis(self):
        check_shape("a", np.zeros((3, 7)), (3, -1))

    def test_wrong_extent_rejected(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("a", np.zeros((3, 4)), (3, 5))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape("a", np.zeros(12), (3, 4))


class TestCheckBinaryArray:
    def test_accepts_zeros_and_ones(self):
        result = check_binary_array("bits", np.array([0, 1, 1, 0]))
        assert result.dtype == np.uint8

    def test_rejects_other_values(self):
        with pytest.raises(ValueError):
            check_binary_array("bits", np.array([0, 2]))

    def test_empty_array_passes(self):
        assert check_binary_array("bits", np.array([])).size == 0


class TestCheckChoice:
    def test_accepts_member(self):
        check_choice("mode", "fast", ("fast", "slow"))

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode"):
            check_choice("mode", "medium", ("fast", "slow"))
