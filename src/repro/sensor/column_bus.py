"""Column bus arbitration: the C_in/C_out token protocol and event termination.

All pixels of a column share one bus (``V_o`` in Fig. 1).  The paper's
protocol guarantees no pulse is ever lost even when several pixels of the
column fire close together:

* *parallel blocking* — the moment any pixel pulls the bus down, every pixel
  sees ``V_o`` low through the 3-input NAND and asserts ``C_out``, so every
  pixel below is blocked at once;
* *sequential release* — when an event terminates, the ``C_out`` chain
  releases pixels one after the other from the top of the column downwards,
  so among the pixels left waiting the **topmost** one acquires the bus next
  (never two at a time);
* *event termination* — the column control unit at the foot of the bus
  detects the pull-down and, after a user-controllable delay, raises the
  global ``Q`` so that only the pixel that is actually driving the bus ends
  its pulse.

:class:`ColumnBusArbiter` reproduces this behaviour on a list of pixel firing
times and returns, for every event, the time at which it actually occupied
the bus.  :class:`ColumnControlUnit` models the foot-of-column circuit (pull
-down detection, termination delay, counter sampling strobe).

The scalar :meth:`ColumnBusArbiter.arbitrate` is the executable specification;
:func:`arbitrate_columns` is the column-parallel engine built on it.  Because
every event occupies the bus for the same duration, the *emission instants* of
a column are schedule-invariant: sorting the fires ascending and running the
single-server recurrence ``emit_k = max(fire_k, emit_{k-1} + d)`` yields
exactly the bus-occupation times the token protocol produces, for every
column at once (one short loop over the row axis, vectorised over all
sample x column instances).  The only thing the topmost-first release rule
changes is *which* pixel fills each emission slot inside a collision cluster
("pool") of three or more events — those pools are re-paired by a second
vectorised pass that applies the release rule to all of them at once, so the
batched engine stays event-for-event identical to the scalar arbiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.pixel.event import EventLatch, PixelEvent
from repro.utils.validation import check_positive


@dataclass
class ColumnControlUnit:
    """Foot-of-column control: senses the bus and times the termination pulse.

    Attributes
    ----------
    termination_delay:
        The user-controllable delay between the detection of the bus
        pull-down and the rise of ``Q`` — this sets the event duration.
    """

    termination_delay: float = 5.0e-9

    def __post_init__(self) -> None:
        check_positive("termination_delay", self.termination_delay)

    def termination_time(self, pull_down_time: float) -> float:
        """Time at which ``Q`` rises for an event that pulled the bus down."""
        check_positive("pull_down_time", pull_down_time, allow_zero=True)
        return pull_down_time + self.termination_delay

    def sample_strobe_time(self, pull_down_time: float) -> float:
        """Time at which the counter is sampled for this event.

        The 'Sample & Add' latches the global counter when the pull-down is
        detected, i.e. at the leading edge of the event.
        """
        check_positive("pull_down_time", pull_down_time, allow_zero=True)
        return pull_down_time


@dataclass
class ArbitrationResult:
    """Outcome of serialising one column's events.

    Attributes
    ----------
    events:
        The input events annotated with their actual bus-occupation time,
        ordered by emission time.
    n_queued:
        How many events had to wait for the bus (their fire time fell while
        the bus was busy or a higher pixel was waiting).
    max_queue_delay:
        The largest fire-to-emit delay experienced by any event.
    bus_busy_time:
        Total time the bus spent occupied.
    """

    events: list[PixelEvent] = field(default_factory=list)
    n_queued: int = 0
    max_queue_delay: float = 0.0
    bus_busy_time: float = 0.0

    @property
    def n_events(self) -> int:
        """Number of events delivered through the bus."""
        return len(self.events)


class ColumnBusArbiter:
    """Serialises the events of one column according to the token protocol.

    Parameters
    ----------
    event_duration:
        Bus-occupation time of one event (termination delay of the column
        control unit).
    """

    def __init__(self, event_duration: float = 5.0e-9) -> None:
        check_positive("event_duration", event_duration)
        self.event_duration = float(event_duration)
        self.control_unit = ColumnControlUnit(termination_delay=self.event_duration)

    def arbitrate(
        self,
        events: Sequence[PixelEvent],
        *,
        deadline: float | None = None,
    ) -> ArbitrationResult:
        """Assign bus-occupation times to ``events``.

        The scheduling rule mirrors the hardware: the bus is granted at the
        event's own fire time when the bus is idle and nobody above is
        waiting; otherwise the event waits, and whenever the bus frees up the
        **topmost** (smallest row index) waiting pixel is released first.

        Parameters
        ----------
        events:
            The pixel events of one column (any order).  Each pixel may
            appear at most once — the activation latch fires once per sample.
        deadline:
            Optional end of the conversion window; events that cannot be
            emitted before the deadline are dropped (they would fall outside
            the counter range in hardware).  ``None`` delivers everything.

        Returns
        -------
        ArbitrationResult
            Events annotated with emission times, in emission order.
        """
        pending = sorted(events, key=lambda event: (event.fire_time, event.row))
        seen_rows = {event.row for event in pending}
        if len(seen_rows) != len(pending):
            raise ValueError("each pixel (row) may emit at most one event per sample")

        result = ArbitrationResult()
        bus_free_at = 0.0
        remaining = list(pending)
        while remaining:
            # Pixels already waiting when the bus frees: topmost goes first.
            waiting = [event for event in remaining if event.fire_time <= bus_free_at]
            if waiting:
                chosen = min(waiting, key=lambda event: event.row)
                emit_time = bus_free_at
            else:
                chosen = remaining[0]
                emit_time = chosen.fire_time
            remaining.remove(chosen)
            if deadline is not None and emit_time >= deadline:
                continue
            annotated = chosen.with_emit_time(emit_time)
            result.events.append(annotated)
            if annotated.queued_delay > 0.0:
                result.n_queued += 1
                result.max_queue_delay = max(result.max_queue_delay, annotated.queued_delay)
            bus_free_at = emit_time + self.event_duration
            result.bus_busy_time += self.event_duration
        return result


@dataclass
class BatchArbitrationResult:
    """Outcome of serialising many column instances at once.

    All arrays have shape ``(n_groups, n_slots)`` where a *group* is one
    (sample, column) instance and the slot axis enumerates that group's
    candidate events in ascending ``(fire_time, row)`` order.  Slots whose
    ``active`` flag is clear carry no event and every other field is
    meaningless there.

    Attributes
    ----------
    active:
        Which slots hold an event that entered arbitration.
    delivered:
        Which slots were actually emitted before the deadline.
    emit_times:
        Bus-occupation instant of each delivered slot.
    fire_times:
        Comparator-flip time of the pixel *paired* with each slot.  Inside a
        re-simulated collision pool the topmost-first release rule can pair a
        slot with a different pixel than arrival order would, so this is not
        always the slot's own sorted fire time.
    rows:
        Row index of the pixel paired with each slot.
    """

    active: np.ndarray
    delivered: np.ndarray
    emit_times: np.ndarray
    fire_times: np.ndarray
    rows: np.ndarray

    @property
    def n_delivered(self) -> int:
        """Total number of events delivered through all buses."""
        return int(np.count_nonzero(self.delivered))

    @property
    def n_dropped(self) -> int:
        """Events that entered arbitration but could not beat the deadline."""
        return int(np.count_nonzero(self.active) - self.n_delivered)

    def queue_delays(self) -> np.ndarray:
        """Fire-to-emit delay of every delivered event (flat array)."""
        mask = self.delivered
        return self.emit_times[mask] - self.fire_times[mask]


def _fifo_emission_pass(
    fire_times: np.ndarray,
    active: np.ndarray,
    event_duration: float,
    deadline: float | None,
):
    """Run the single-server emission recurrence over every group at once.

    One iteration per slot (row) position, vectorised over all groups: the
    emission instant of an event is ``max(fire, bus_free)`` and a delivered
    event occupies the bus for ``event_duration``.  The floating-point
    operations are exactly the ones the scalar arbiter performs
    (``max`` of two floats, one addition per delivered event), so the emitted
    instants are bit-identical to a per-column
    :meth:`ColumnBusArbiter.arbitrate` run.

    Returns ``(emit_times, delivered, bus_free_before)``; the last array
    records the bus state seen by each slot, which is what delimits
    collision pools.
    """
    n_groups, n_slots = fire_times.shape
    emit_times = np.zeros_like(fire_times)
    bus_free_before = np.zeros_like(fire_times)
    delivered = np.zeros(fire_times.shape, dtype=bool)
    bus_free = np.zeros(n_groups, dtype=fire_times.dtype)
    for k in range(n_slots):
        bus_free_before[:, k] = bus_free
        emit = np.maximum(fire_times[:, k], bus_free)
        emit_times[:, k] = emit
        ok = active[:, k]
        if deadline is not None:
            ok = ok & (emit < deadline)
        delivered[:, k] = ok
        bus_free = np.where(ok, emit + event_duration, bus_free)
    return emit_times, delivered, bus_free_before


def arbitrate_columns(
    fire_times: np.ndarray,
    active: np.ndarray,
    rows: np.ndarray,
    *,
    event_duration: float,
    deadline: float | None = None,
) -> BatchArbitrationResult:
    """Serialise the events of many column instances in a few numpy passes.

    Parameters
    ----------
    fire_times : numpy.ndarray
        ``(n_groups, n_slots)`` float array of candidate fire instants (s),
        each group sorted in ascending ``(fire_time, row)`` order; a *group*
        is one (sample, column) bus instance.
    active : numpy.ndarray
        ``(n_groups, n_slots)`` boolean is-an-event flags.  Inactive slots
        may carry any values; they are ignored (the bus skips them), so a
        group may interleave its events with gaps.
    rows : numpy.ndarray
        ``(n_groups, n_slots)`` integer pixel row indices, used by the
        topmost-first release rule inside collision pools.
    event_duration : float
        Bus-occupation time of one event (s).
    deadline : float, optional
        End of the conversion window (s); events whose emission instant
        would fall at or beyond it are dropped, exactly like the scalar
        arbiter.  ``None`` delivers everything.

    Returns
    -------
    BatchArbitrationResult
        Emission times, delivered flags and the (possibly re-paired) pixel
        identity of every slot — event-for-event identical to running
        :meth:`ColumnBusArbiter.arbitrate` on each group separately, which
        the equivalence suite keeps pinned.
    """
    check_positive("event_duration", event_duration)
    fire_times = np.asarray(fire_times, dtype=float)
    active = np.asarray(active, dtype=bool)
    rows = np.asarray(rows)
    if fire_times.shape != active.shape or fire_times.shape != rows.shape:
        raise ValueError("fire_times, active and rows must share one shape")
    if fire_times.ndim != 2:
        raise ValueError("batched arbitration expects (n_groups, n_slots) arrays")

    emit_times, delivered, bus_free_before = _fifo_emission_pass(
        fire_times, active, float(event_duration), deadline
    )

    # Collision pools: chains of events that found the bus occupied (or freed
    # at exactly their fire instant) link to their predecessor.  Slot-to-pixel
    # pairing inside a pool follows arrival order — identical to the FIFO
    # pass — unless the topmost-first release rule can actually intervene,
    # which needs all three of:
    #
    # * three or more events (with two, the second is the only one left when
    #   the bus frees);
    # * a row inversion along arrival order (otherwise the earliest waiting
    #   pixel is also the topmost);
    # * an event already waiting when an earlier slot was granted (otherwise
    #   every grant sees a single eligible pixel).
    #
    # Only pools meeting all three are re-paired (vectorised, below).
    n_groups, n_slots = fire_times.shape
    event_index = np.flatnonzero(active)  # group-major, slot-ascending
    resim_pools = np.empty(0, dtype=np.int64)
    if event_index.size:
        starts_pool = active & (fire_times > bus_free_before)
        pool_ids = np.cumsum(starts_pool, axis=1)
        flat_pools = (np.arange(n_groups)[:, None] * (n_slots + 1) + pool_ids)[active]
        event_fires = fire_times.ravel()[event_index]
        event_emits = emit_times.ravel()[event_index]
        event_rows = rows.ravel()[event_index]
        pool_sizes = np.bincount(flat_pools)
        same_pool = flat_pools[1:] == flat_pools[:-1]
        inverted = same_pool & (event_rows[1:] <= event_rows[:-1])
        waited = same_pool & (event_fires[1:] <= event_emits[:-1])
        has_inversion = np.zeros(pool_sizes.size, dtype=bool)
        has_inversion[flat_pools[1:][inverted]] = True
        has_waiter = np.zeros(pool_sizes.size, dtype=bool)
        has_waiter[flat_pools[1:][waited]] = True
        resim_pools = np.nonzero((pool_sizes >= 3) & has_inversion & has_waiter)[0]

    if resim_pools.size:
        fire_times = fire_times.copy()
        rows = np.array(rows, dtype=np.int64)
        _resolve_pool_pairing(
            resim_pools,
            flat_pools,
            event_index,
            event_fires,
            event_emits,
            event_rows.astype(np.int64),
            fire_times.ravel(),
            rows.ravel(),
        )
    return BatchArbitrationResult(
        active=active,
        delivered=delivered,
        emit_times=emit_times,
        fire_times=fire_times,
        rows=rows,
    )


def _resolve_pool_pairing(
    resim_pools: np.ndarray,
    flat_pools: np.ndarray,
    event_index: np.ndarray,
    event_fires: np.ndarray,
    event_emits: np.ndarray,
    event_rows: np.ndarray,
    fire_out: np.ndarray,
    row_out: np.ndarray,
) -> None:
    """Re-pair the slots of reorderable collision pools, all pools at once.

    The emission instants and the delivered/dropped split of a pool are
    schedule-invariant, so only the slot-to-pixel pairing is recomputed: all
    flagged pools step through their slots together, and at every slot each
    pool grants its bus to the topmost (lowest-row) pixel among the events
    already waiting — the scalar arbiter's release rule, evaluated with the
    same ``fire <= bus_free`` comparison on the same floats.  The paired fire
    times and rows are written back into ``fire_out`` / ``row_out`` (flat
    views of the result arrays).
    """
    starts = np.searchsorted(flat_pools, resim_pools, side="left")
    sizes = np.searchsorted(flat_pools, resim_pools, side="right") - starts
    width = int(sizes.max())
    span = np.arange(width)
    member = span[None, :] < sizes[:, None]
    gather = np.minimum(starts[:, None] + span[None, :], flat_pools.size - 1)
    pool_fires = event_fires[gather]
    pool_rows = event_rows[gather]
    pool_slot_times = event_emits[gather]
    sentinel = int(pool_rows.max()) + 1
    unserved = member.copy()
    choices = np.zeros(member.shape, dtype=np.int64)
    for slot in range(width):
        # Every pool slot has at least one waiting event: among the first
        # ``slot + 1`` arrivals at most ``slot`` have been served, and their
        # fire times cannot exceed the slot's emission instant.
        eligible = unserved & (pool_fires <= pool_slot_times[:, slot, None])
        keyed = np.where(eligible, pool_rows, sentinel)
        choice = np.argmin(keyed, axis=1)
        choices[:, slot] = choice
        serving = np.flatnonzero(member[:, slot])
        unserved[serving, choice[serving]] = False
    flat_positions = event_index[gather]
    fire_out[flat_positions[member]] = np.take_along_axis(pool_fires, choices, axis=1)[member]
    row_out[flat_positions[member]] = np.take_along_axis(pool_rows, choices, axis=1)[member]


class GateLevelColumn:
    """Cycle-driven model of one column built from :class:`EventLatch` instances.

    This is the slow, explicit model used by the unit tests to check the
    analytic :class:`ColumnBusArbiter` against a direct simulation of the
    ``C_in``/``C_out`` chain: ``n_rows`` latches are stepped on a fine time
    grid, the token chain is evaluated combinationally every step, and bus
    grants/terminations follow the latch states.
    """

    def __init__(self, n_rows: int, event_duration: float = 5.0e-9) -> None:
        check_positive("n_rows", n_rows)
        check_positive("event_duration", event_duration)
        self.n_rows = int(n_rows)
        self.event_duration = float(event_duration)
        self.latches = [EventLatch() for _ in range(self.n_rows)]

    def simulate(
        self,
        fire_times: Sequence[float | None],
        *,
        time_step: float = 1.0e-9,
        end_time: float | None = None,
    ) -> list[PixelEvent]:
        """Run the column on a uniform time grid and return the emitted events.

        Parameters
        ----------
        fire_times:
            Per-row firing time, or ``None`` for pixels that do not fire
            (deselected or dark).
        time_step:
            Simulation step; must be no larger than the event duration.
        end_time:
            End of the simulation; defaults to a little past the last event.
        """
        if len(fire_times) != self.n_rows:
            raise ValueError(
                f"fire_times must have {self.n_rows} entries, got {len(fire_times)}"
            )
        check_positive("time_step", time_step)
        if time_step > self.event_duration:
            raise ValueError("time_step must not exceed the event duration")
        finite_times = [t for t in fire_times if t is not None]
        if end_time is None:
            last = max(finite_times) if finite_times else 0.0
            end_time = last + self.event_duration * (self.n_rows + 2)

        for latch in self.latches:
            latch.reset()
        emitted: list[PixelEvent] = []
        driving_row: int | None = None
        termination_at: float | None = None

        now = 0.0
        while now <= end_time:
            # 1. Activation fronts reaching the latches.
            for row, fire_time in enumerate(fire_times):
                if fire_time is not None and fire_time <= now:
                    self.latches[row].activate()
            # 2. Event termination (global Q) for the pixel driving the bus.
            if driving_row is not None and termination_at is not None and now >= termination_at:
                self.latches[driving_row].terminate()
                driving_row = None
                termination_at = None
            # 3. Token chain: C_in of row 0 is low; propagate downwards.
            bus_is_high = driving_row is None
            if bus_is_high:
                c_in = False
                for row, latch in enumerate(self.latches):
                    if not c_in and latch.wants_bus:
                        latch.grant()
                        driving_row = row
                        termination_at = now + self.event_duration
                        fire_time = fire_times[row]
                        emitted.append(
                            PixelEvent(
                                row=row, col=0, fire_time=float(fire_time)
                            ).with_emit_time(now)
                        )
                        break
                    c_in = latch.c_out(c_in, bus_is_high)
            now += time_step
        return emitted
