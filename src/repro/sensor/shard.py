"""Sharded tiled-sensor capture: a mosaic of focal-plane arrays as one sensor.

The paper's prototype is a single 64x64 chip; scaling the architecture to
large scenes means scaling *out*, not up — an array of small compressive
sensors observing adjacent fields of view, each generating its compressed
samples concurrently at the focal plane, exactly the parallel one-shot
acquisition architecture of Björklund & Magli (PAPERS.md).  This module
models that system level:

* :class:`TiledSensorArray` splits a large scene into a grid of independent
  :class:`~repro.sensor.imager.CompressiveImager` tiles.  Each tile is its
  own chip: its own free-running selection CA with its own seed (derived from
  the array seed and the tile's grid position), its own exposure adaptation,
  its own compressed-sample stream.  Edge tiles shrink to fit scenes that are
  not multiples of the tile size, the way a mosaic camera crops its border
  chips.
* Tiles capture **concurrently** through a :mod:`concurrent.futures`
  executor (``executor="thread" | "process" | "serial"``, ``max_workers``
  configurable).  Every tile capture runs on a *copy* of the tile imager
  (so nothing mutates the array's state, whichever process captured it) and
  :meth:`CompressiveImager.capture` re-derives its noise streams from the
  imager seed — the captured samples are therefore byte-identical whichever
  executor runs them, and independent of capture history.  The executor is
  purely a wall-clock knob, and the tiled-capture benchmarks gate that
  ``max_workers > 1`` actually pays.
* The per-tile frames merge into one :class:`TiledCaptureResult`: the
  concatenated sample vector, the per-tile :class:`CompressedFrame` grid and
  the **summed** event statistics (``n_lost_events``, ``n_queued_events``,
  ``n_lsb_errors``, ``max_queue_delay`` as a maximum), which the
  reconstruction pipeline (:func:`repro.recon.pipeline.reconstruct_tiled`)
  reassembles tile-by-tile into the full frame — mirroring the block-CS
  reassembly of :mod:`repro.cs.block`, but with every block backed by real
  sensor hardware state instead of a shared synthetic matrix.

Per-tile invariants are exactly the single-sensor invariants: each tile's Φ
comes from the one shared builder (shared-Φ invariant) and each tile's
default-dtype behavioural capture stays byte-identical to the legacy loop
(bit-fidelity invariant).  The ``dtype="float32"`` fast mode of
:meth:`CompressiveImager.capture` composes with sharding for very large
scenes; see :data:`repro.sensor.imager.FLOAT32_SAMPLE_ATOL` for its accuracy
contract.
"""

from __future__ import annotations

import concurrent.futures
import copy
from dataclasses import dataclass, field, replace
from collections.abc import Iterator

import numpy as np

from repro.ca.selection import CASelectionGenerator
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame, CompressiveImager
from repro.utils.rng import derive_seed
from repro.utils.validation import check_choice, check_in_range, check_positive

EXECUTOR_KINDS = ("serial", "thread", "process")


def tile_grid(scene_shape, tile_shape) -> list[list[TileSlot]]:
    """Split a scene into the row-major grid of :class:`TileSlot` footprints.

    This is the one tiling rule shared by the capture side
    (:class:`TiledSensorArray`) and the receiving side
    (:class:`repro.stream.receiver.StreamReceiver` /
    :class:`repro.recon.incremental.IncrementalTiledReconstructor`): edge
    tiles shrink to fit scenes that are not multiples of the tile size, so
    both ends of a channel derive identical geometry from the two shapes the
    stream header carries.
    """
    scene_rows, scene_cols = (int(scene_shape[0]), int(scene_shape[1]))
    tile_rows, tile_cols = (int(tile_shape[0]), int(tile_shape[1]))
    check_positive("scene rows", scene_rows)
    check_positive("scene cols", scene_cols)
    check_positive("tile rows", tile_rows)
    check_positive("tile cols", tile_cols)
    tile_rows = min(tile_rows, scene_rows)
    tile_cols = min(tile_cols, scene_cols)
    slots: list[list[TileSlot]] = []
    for grid_row, row0 in enumerate(range(0, scene_rows, tile_rows)):
        slot_row: list[TileSlot] = []
        for grid_col, col0 in enumerate(range(0, scene_cols, tile_cols)):
            slot_row.append(
                TileSlot(
                    grid_row=grid_row,
                    grid_col=grid_col,
                    row0=row0,
                    col0=col0,
                    rows=min(tile_rows, scene_rows - row0),
                    cols=min(tile_cols, scene_cols - col0),
                )
            )
        slots.append(slot_row)
    return slots


@dataclass(frozen=True)
class TileSlot:
    """Geometry of one tile: grid position and scene-pixel footprint.

    Attributes
    ----------
    grid_row, grid_col:
        Position of the tile in the sensor mosaic.
    row0, col0:
        Scene coordinates of the tile's top-left pixel.
    rows, cols:
        Tile dimensions; edge tiles may be smaller than the nominal tile
        shape when the scene is not divisible by it.
    """

    grid_row: int
    grid_col: int
    row0: int
    col0: int
    rows: int
    cols: int

    @property
    def row_slice(self) -> slice:
        """Scene-row slice covered by this tile."""
        return slice(self.row0, self.row0 + self.rows)

    @property
    def col_slice(self) -> slice:
        """Scene-column slice covered by this tile."""
        return slice(self.col0, self.col0 + self.cols)

    @property
    def n_pixels(self) -> int:
        """Pixels in this tile."""
        return self.rows * self.cols


@dataclass
class TiledCaptureResult:
    """The merged output of one tiled capture.

    Attributes
    ----------
    tiles:
        Row-major grid of per-tile :class:`CompressedFrame` objects.
    slots:
        The matching grid of :class:`TileSlot` geometry.
    scene_shape, tile_shape:
        Full scene dimensions and the nominal (non-edge) tile dimensions.
    metadata:
        Aggregated capture statistics: the per-tile event statistics summed
        (``max_queue_delay`` taken as the maximum), plus the capture options
        (``fidelity``, ``dtype``, ``executor``, ``max_workers``).
    """

    tiles: list[list[CompressedFrame]]
    slots: list[list[TileSlot]]
    scene_shape: tuple[int, int]
    tile_shape: tuple[int, int]
    metadata: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------- geometry
    @property
    def grid_shape(self) -> tuple[int, int]:
        """Tiles per scene edge, ``(grid_rows, grid_cols)``."""
        return (len(self.tiles), len(self.tiles[0]) if self.tiles else 0)

    @property
    def n_tiles(self) -> int:
        """Total number of tiles in the mosaic."""
        grid_rows, grid_cols = self.grid_shape
        return grid_rows * grid_cols

    @property
    def n_pixels(self) -> int:
        """Pixels in the full scene."""
        return self.scene_shape[0] * self.scene_shape[1]

    def frames(self) -> Iterator[tuple[TileSlot, CompressedFrame]]:
        """Yield ``(slot, frame)`` pairs in row-major grid order."""
        for slot_row, tile_row in zip(self.slots, self.tiles):
            yield from zip(slot_row, tile_row)

    # -------------------------------------------------------------- payload
    @property
    def n_samples(self) -> int:
        """Total compressed samples over all tiles."""
        return sum(frame.n_samples for _, frame in self.frames())

    @property
    def samples(self) -> np.ndarray:
        """All compressed samples, concatenated in row-major tile order."""
        return np.concatenate([frame.samples for _, frame in self.frames()])

    @property
    def compression_ratio(self) -> float:
        """Delivered samples divided by scene pixels."""
        return self.n_samples / self.n_pixels

    @property
    def compressed_bits(self) -> int:
        """Total payload bits over all tile streams."""
        return sum(frame.compressed_bits for _, frame in self.frames())

    def digital_image(self) -> np.ndarray:
        """Stitch the per-tile ideal code images into the full scene.

        Requires the capture to have kept the digital images
        (``keep_digital_image=True``).
        """
        image = np.zeros(self.scene_shape, dtype=np.int64)
        for slot, frame in self.frames():
            if frame.digital_image is None:
                raise ValueError(
                    "tile digital images were not kept; capture with "
                    "keep_digital_image=True to stitch the ideal code image"
                )
            image[slot.row_slice, slot.col_slice] = frame.digital_image
        return image


def merge_tile_statistics(frames: list[CompressedFrame]) -> dict[str, object]:
    """Aggregate per-tile capture statistics into mosaic-level counts.

    Counters (``n_lost_events``, ``n_queued_events``, ``n_lsb_errors``,
    ``n_saturated_pixels``) sum across tiles — behavioural tiles contribute
    modelled float expectations, event tiles exact integers, so the sums
    keep the per-tile numeric type discipline.  ``max_queue_delay`` is the
    maximum over tiles, and ``event_statistics`` stays ``"exact"`` only when
    every tile reported exact counts.
    """
    merged: dict[str, object] = {}
    for key in ("n_lost_events", "n_queued_events", "n_lsb_errors", "n_saturated_pixels"):
        values = [frame.metadata[key] for frame in frames if key in frame.metadata]
        if values:
            total = sum(values)
            merged[key] = float(total) if isinstance(total, float) else int(total)
    delays = [
        frame.metadata["max_queue_delay"]
        for frame in frames
        if "max_queue_delay" in frame.metadata
    ]
    if delays:
        merged["max_queue_delay"] = float(max(delays))
    statistics = {frame.metadata.get("event_statistics") for frame in frames}
    merged["event_statistics"] = "exact" if statistics == {"exact"} else "modelled"
    return merged


def _capture_tile_batch(job):
    """Capture one tile's whole frame sequence; module-level for pickling.

    Like :func:`_capture_tile`, the chip is a *copy*: the tile's CA advances
    frame to frame inside the copy (``capture_batch``'s one-pattern overlap),
    and the copy's final CA state is returned alongside the frames so the
    parent can — optionally and deterministically — advance its own imagers.
    One job covers one tile's full sequence, so the result is byte-identical
    whichever executor runs it.
    """
    imager, photocurrents, kwargs = job
    chip = copy.deepcopy(imager)
    frames = chip.capture_batch(photocurrents, **kwargs)
    return frames, chip.selection.seed_state


def _capture_tile(job) -> CompressedFrame:
    """Capture one tile; module-level so process executors can pickle it.

    The chip is captured on a *copy*, so the parent's imagers are never
    mutated (auto-expose adapts the copy's ``V_ref`` only).  This is what
    makes tile captures stateless and the executors interchangeable: a
    process worker discards its copy just like the parent discards its own,
    so the samples cannot depend on which executor — or which previous
    capture — ran.
    """
    imager, photocurrent, kwargs = job
    return copy.deepcopy(imager).capture(photocurrent, **kwargs)


class TiledSensorArray:
    """A grid of independent compressive imagers covering one large scene.

    Parameters
    ----------
    scene_shape : tuple of int
        Full scene dimensions ``(rows, cols)``.
    tile_shape : tuple of int
        Nominal per-chip array size (default the paper's 64x64).  Edge tiles
        shrink when the scene is not divisible by the tile shape.
    config : SensorConfig, optional
        Template for the non-geometry chip parameters (clock, bit depths,
        frame rate, ...); each tile's configuration is this template with
        ``rows``/``cols`` replaced by the tile footprint.
    compression_ratio : float, optional
        Samples-per-pixel budget applied to every tile (each tile delivers
        ``round(ratio * tile_pixels)`` samples, so edge tiles automatically
        deliver proportionally fewer).  Defaults to the template's ratio.
    rule, steps_per_sample, warmup_steps:
        Selection-CA parameters shared by all tiles; each tile still draws
        its *own* CA seed, as independent chips would.
    executor : {"thread", "process", "serial"}
        How tile captures run: a thread pool (default — the capture hot path
        is numpy/BLAS work that releases the GIL), a process pool, or inline.
        The samples are byte-identical across all three.
    max_workers : int, optional
        Concurrency cap for the pool executors; ``None`` lets
        :mod:`concurrent.futures` pick, and the pool is never wider than the
        tile count.
    dtype : {"float64", "float32"}
        Default behavioural arithmetic width for :meth:`capture`; see
        :meth:`CompressiveImager.capture`.
    seed : int
        Array-level seed; tile ``(i, j)`` derives its chip seed as
        ``derive_seed(seed, "tile", i, j)``, giving every tile an
        independent, reproducible CA seed and noise stream.
    """

    def __init__(
        self,
        scene_shape: tuple[int, int] = (256, 256),
        *,
        tile_shape: tuple[int, int] = (64, 64),
        config: SensorConfig | None = None,
        compression_ratio: float | None = None,
        rule: int = 30,
        steps_per_sample: int = 1,
        warmup_steps: int = 8,
        executor: str = "thread",
        max_workers: int | None = None,
        dtype: str = "float64",
        seed: int = 2018,
    ) -> None:
        scene_rows, scene_cols = (int(scene_shape[0]), int(scene_shape[1]))
        tile_rows, tile_cols = (int(tile_shape[0]), int(tile_shape[1]))
        check_positive("scene rows", scene_rows)
        check_positive("scene cols", scene_cols)
        check_positive("tile rows", tile_rows)
        check_positive("tile cols", tile_cols)
        check_choice("executor", executor, EXECUTOR_KINDS)
        check_choice("dtype", dtype, ("float64", "float32"))
        if max_workers is not None:
            check_positive("max_workers", max_workers)
        template = config or SensorConfig()
        if compression_ratio is None:
            compression_ratio = template.compression_ratio
        check_in_range(
            "compression_ratio", compression_ratio, 0.0, 1.0, inclusive=False
        )
        self.scene_shape = (scene_rows, scene_cols)
        self.tile_shape = (min(tile_rows, scene_rows), min(tile_cols, scene_cols))
        self.compression_ratio = float(compression_ratio)
        self.executor = executor
        self.max_workers = max_workers
        self.dtype = dtype
        self.seed = int(seed)

        self.slots: list[list[TileSlot]] = tile_grid(self.scene_shape, self.tile_shape)
        self.imagers: list[list[CompressiveImager]] = []
        for slot_row in self.slots:
            imager_row: list[CompressiveImager] = []
            for slot in slot_row:
                tile_config = replace(
                    template,
                    rows=slot.rows,
                    cols=slot.cols,
                    compression_ratio=self.compression_ratio,
                )
                imager_row.append(
                    CompressiveImager(
                        tile_config,
                        rule=rule,
                        steps_per_sample=steps_per_sample,
                        warmup_steps=warmup_steps,
                        seed=derive_seed(self.seed, "tile", slot.grid_row, slot.grid_col),
                    )
                )
            self.imagers.append(imager_row)

    # ------------------------------------------------------------- geometry
    @property
    def grid_shape(self) -> tuple[int, int]:
        """Tiles per scene edge, ``(grid_rows, grid_cols)``."""
        return (len(self.slots), len(self.slots[0]))

    @property
    def n_tiles(self) -> int:
        """Total number of tiles in the mosaic."""
        grid_rows, grid_cols = self.grid_shape
        return grid_rows * grid_cols

    def samples_per_tile(
        self, slot: TileSlot, compression_ratio: float | None = None
    ) -> int:
        """Compressed-sample budget of one tile (``round(R x tile pixels)``).

        ``compression_ratio`` overrides the array's configured ratio for one
        call — how the streaming bit-rate governor degrades a frame to fit a
        channel budget without rebuilding the array.
        """
        ratio = self.compression_ratio if compression_ratio is None else compression_ratio
        check_in_range("compression_ratio", ratio, 0.0, 1.0, inclusive=False)
        return max(1, int(round(ratio * slot.n_pixels)))

    # -------------------------------------------------------------- capture
    def _tile_jobs(
        self,
        photocurrent: np.ndarray,
        *,
        fidelity: str,
        auto_expose: bool,
        lsb_error: bool,
        keep_digital_image: bool,
        dtype: str,
        compression_ratio: float | None,
    ) -> list[tuple]:
        """Build the per-tile capture jobs of one frame, in row-major order."""
        photocurrent = np.asarray(photocurrent, dtype=float)
        if photocurrent.shape != self.scene_shape:
            raise ValueError(
                f"photocurrent must have shape {self.scene_shape}, "
                f"got {photocurrent.shape}"
            )
        jobs = []
        for slot_row, imager_row in zip(self.slots, self.imagers):
            for slot, imager in zip(slot_row, imager_row):
                tile_current = photocurrent[slot.row_slice, slot.col_slice]
                kwargs = dict(
                    n_samples=self.samples_per_tile(slot, compression_ratio),
                    fidelity=fidelity,
                    # A fully dark tile cannot adapt its reference ramp; the
                    # chip falls back to its configured exposure.
                    auto_expose=auto_expose and bool((tile_current > 0.0).any()),
                    lsb_error=lsb_error,
                    keep_digital_image=keep_digital_image,
                    dtype=dtype,
                )
                jobs.append((imager, tile_current, kwargs))
        return jobs

    def iter_capture(
        self,
        photocurrent: np.ndarray,
        *,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        keep_digital_image: bool = True,
        dtype: str | None = None,
        executor: str | None = None,
        max_workers: int | None = None,
        compression_ratio: float | None = None,
    ) -> Iterator[tuple[TileSlot, CompressedFrame]]:
        """Capture the scene and yield ``(slot, frame)`` pairs as tiles finish.

        The chunk-iterator form of :meth:`capture`: tiles are yielded in
        row-major grid order while later tiles are still being captured on
        the pool, so a camera node can put tile ``(0, 0)`` on the wire before
        tile ``(3, 3)`` exists.  The frames are byte-identical to
        :meth:`capture` under every executor — same per-tile jobs, same
        stateless :func:`_capture_tile` on an imager copy.

        Parameters are those of :meth:`capture`; ``compression_ratio``
        overrides the per-tile sample budget for this capture only (the
        streaming bit-rate governor's degradation knob).
        """
        executor = executor or self.executor
        check_choice("executor", executor, EXECUTOR_KINDS)
        jobs = self._tile_jobs(
            photocurrent,
            fidelity=fidelity,
            auto_expose=auto_expose,
            lsb_error=lsb_error,
            keep_digital_image=keep_digital_image,
            dtype=dtype or self.dtype,
            compression_ratio=compression_ratio,
        )
        flat_slots = [slot for slot_row in self.slots for slot in slot_row]
        pool = self._make_pool(executor, max_workers or self.max_workers, len(jobs))
        if pool is None:
            for slot, job in zip(flat_slots, jobs):
                yield slot, _capture_tile(job)
            return
        try:
            yield from zip(flat_slots, pool.map(_capture_tile, jobs))
        finally:
            pool.shutdown(wait=True)

    def capture(
        self,
        photocurrent: np.ndarray,
        *,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        keep_digital_image: bool = True,
        dtype: str | None = None,
        executor: str | None = None,
        max_workers: int | None = None,
        compression_ratio: float | None = None,
    ) -> TiledCaptureResult:
        """Capture the whole scene, one concurrent frame per tile.

        Parameters
        ----------
        photocurrent : numpy.ndarray
            Full-scene photocurrent map (A), shape ``scene_shape``.
        fidelity : {"behavioural", "event"}
            Per-tile capture engine, as in :meth:`CompressiveImager.capture`.
        auto_expose : bool
            Per-tile ``V_ref`` adaptation (each chip exposes its own field of
            view, as independent hardware would).  Tiles whose field of view
            carries no light are captured without adaptation instead of
            failing the mosaic.
        lsb_error, keep_digital_image : bool
            As in :meth:`CompressiveImager.capture`, applied per tile.
        dtype : {"float64", "float32"}, optional
            Behavioural arithmetic width; defaults to the array's ``dtype``.
        executor, max_workers:
            Per-call override of the array's executor configuration.
        compression_ratio : float, optional
            Per-call override of the per-tile sample budget (the streaming
            bit-rate governor's degradation knob).

        Returns
        -------
        TiledCaptureResult
            The per-tile frame grid plus merged samples and summed event
            statistics.
        """
        executor = executor or self.executor
        check_choice("executor", executor, EXECUTOR_KINDS)
        dtype = dtype or self.dtype
        jobs = self._tile_jobs(
            photocurrent,
            fidelity=fidelity,
            auto_expose=auto_expose,
            lsb_error=lsb_error,
            keep_digital_image=keep_digital_image,
            dtype=dtype,
            compression_ratio=compression_ratio,
        )
        frames = self._run_jobs(jobs, executor, max_workers or self.max_workers)

        grid_rows, grid_cols = self.grid_shape
        tile_grid = [
            frames[row * grid_cols : (row + 1) * grid_cols] for row in range(grid_rows)
        ]
        metadata = merge_tile_statistics(frames)
        metadata.update(
            fidelity=fidelity,
            dtype=dtype,
            executor=executor,
            max_workers=max_workers or self.max_workers,
            n_tiles=self.n_tiles,
        )
        return TiledCaptureResult(
            tiles=tile_grid,
            slots=self.slots,
            scene_shape=self.scene_shape,
            tile_shape=self.tile_shape,
            metadata=metadata,
        )

    def capture_scene(
        self,
        scene: np.ndarray,
        *,
        conversion=None,
        **kwargs,
    ) -> TiledCaptureResult:
        """Convert a normalised scene to photocurrents and capture it.

        One :class:`~repro.optics.photo.PhotoConversion` spans the whole
        scene, so fixed-pattern noise varies across the mosaic the way it
        would across a wafer of chips.
        """
        from repro.optics.photo import PhotoConversion

        conversion = conversion or PhotoConversion(
            seed=derive_seed(self.seed, "tiled-photo")
        )
        return self.capture(
            conversion.convert(np.asarray(scene, dtype=float)), **kwargs
        )

    def capture_scene_sequence(
        self,
        scenes,
        *,
        conversion=None,
        **kwargs,
    ) -> list[TiledCaptureResult]:
        """Convert normalised scenes to photocurrents and capture the sequence.

        The same single :class:`~repro.optics.photo.PhotoConversion` spans
        every frame (fixed-pattern noise stays fixed across the sequence, as
        on a real wafer); all other keyword arguments go to
        :meth:`capture_sequence`.
        """
        from repro.optics.photo import PhotoConversion

        conversion = conversion or PhotoConversion(
            seed=derive_seed(self.seed, "tiled-photo")
        )
        return self.capture_sequence(
            [conversion.convert(np.asarray(scene, dtype=float)) for scene in scenes],
            **kwargs,
        )

    def capture_sequence(
        self,
        photocurrents,
        *,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        keep_digital_image: bool = True,
        dtype: str | None = None,
        executor: str | None = None,
        max_workers: int | None = None,
        compression_ratio: float | None = None,
        advance: bool = False,
    ) -> list[TiledCaptureResult]:
        """Capture a video sequence over the whole mosaic, tiles concurrent.

        Every tile runs its *own* :meth:`CompressiveImager.capture_batch`
        over the sequence — one shared CA evolution per tile, consecutive
        frames overlapping by one selection pattern exactly as each
        free-running chip would — and the per-tile frame stacks are regrouped
        into one :class:`TiledCaptureResult` per input frame.  One executor
        job covers one tile's full sequence, so the captured samples are
        byte-identical under ``serial``/``thread``/``process``, like
        :meth:`capture`.

        Parameters
        ----------
        photocurrents : sequence of numpy.ndarray
            Per-frame photocurrent maps, each of shape ``scene_shape``.
        fidelity, auto_expose, lsb_error, keep_digital_image, dtype:
            As in :meth:`capture`.  A tile whose field of view is dark in
            *any* frame is captured without exposure adaptation (the batched
            chip adapts once per frame and cannot skip individual frames).
        executor, max_workers:
            Per-call override of the array's executor configuration.
        compression_ratio : float, optional
            Per-call override of the per-tile sample budget.
        advance : bool
            When true, leave every tile imager's selection CA positioned
            after the last frame (warm-up already absorbed), so the next
            :meth:`capture_sequence` call continues the same CA evolution —
            how a streaming node chains GOPs.  The end states come from the
            job results, so advancing is executor-independent too.  The
            default keeps :meth:`capture`'s stateless contract.

        Returns
        -------
        list of TiledCaptureResult
            One merged mosaic result per input frame, each tile frame
            independently decodable from its own seed.
        """
        executor = executor or self.executor
        check_choice("executor", executor, EXECUTOR_KINDS)
        dtype = dtype or self.dtype
        photocurrents = [np.asarray(current, dtype=float) for current in photocurrents]
        for index, current in enumerate(photocurrents):
            if current.shape != self.scene_shape:
                raise ValueError(
                    f"photocurrent {index} must have shape {self.scene_shape}, "
                    f"got {current.shape}"
                )
        if not photocurrents:
            return []
        jobs = []
        flat_slots = [slot for slot_row in self.slots for slot in slot_row]
        flat_imagers = [imager for imager_row in self.imagers for imager in imager_row]
        for slot, imager in zip(flat_slots, flat_imagers):
            tile_currents = [
                current[slot.row_slice, slot.col_slice] for current in photocurrents
            ]
            kwargs = dict(
                n_samples=self.samples_per_tile(slot, compression_ratio),
                fidelity=fidelity,
                auto_expose=auto_expose
                and all(bool((current > 0.0).any()) for current in tile_currents),
                lsb_error=lsb_error,
                keep_digital_image=keep_digital_image,
                dtype=dtype,
            )
            jobs.append((imager, tile_currents, kwargs))
        outcomes = self._run_jobs(
            jobs, executor, max_workers or self.max_workers, job_fn=_capture_tile_batch
        )

        grid_rows, grid_cols = self.grid_shape
        results: list[TiledCaptureResult] = []
        for frame_index in range(len(photocurrents)):
            flat_frames = [frames[frame_index] for frames, _ in outcomes]
            tile_grid_frames = [
                flat_frames[row * grid_cols : (row + 1) * grid_cols]
                for row in range(grid_rows)
            ]
            metadata = merge_tile_statistics(flat_frames)
            metadata.update(
                fidelity=fidelity,
                dtype=dtype,
                executor=executor,
                max_workers=max_workers or self.max_workers,
                n_tiles=self.n_tiles,
                frame_index=frame_index,
                n_frames=len(photocurrents),
            )
            results.append(
                TiledCaptureResult(
                    tiles=tile_grid_frames,
                    slots=self.slots,
                    scene_shape=self.scene_shape,
                    tile_shape=self.tile_shape,
                    metadata=metadata,
                )
            )
        if advance:
            for imager, (_, end_state) in zip(flat_imagers, outcomes):
                imager.selection = CASelectionGenerator(
                    imager.config.rows,
                    imager.config.cols,
                    seed_state=end_state,
                    rule=imager.rule_number,
                    steps_per_sample=imager.steps_per_sample,
                    warmup_steps=0,
                )
                imager.warmup_steps = 0
        return results

    @staticmethod
    def _make_pool(executor: str, max_workers: int | None, n_jobs: int):
        """The executor pool for a job batch, or ``None`` for inline runs.

        The one place the serial short-circuit, worker clamp and pool-class
        choice live; :meth:`capture`, :meth:`iter_capture` and
        :meth:`capture_sequence` all route through it.
        """
        if executor == "serial" or n_jobs <= 1:
            return None
        if max_workers is not None:
            max_workers = min(int(max_workers), n_jobs)
        pool_class = (
            concurrent.futures.ThreadPoolExecutor
            if executor == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        return pool_class(max_workers=max_workers)

    @staticmethod
    def _run_jobs(jobs, executor: str, max_workers: int | None, job_fn=_capture_tile):
        """Run the per-tile capture jobs through the chosen executor."""
        pool = TiledSensorArray._make_pool(executor, max_workers, len(jobs))
        if pool is None:
            return [job_fn(job) for job in jobs]
        with pool:
            return list(pool.map(job_fn, jobs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grid_rows, grid_cols = self.grid_shape
        return (
            f"TiledSensorArray(scene={self.scene_shape}, tiles={grid_rows}x{grid_cols}, "
            f"tile_shape={self.tile_shape}, executor={self.executor!r})"
        )
