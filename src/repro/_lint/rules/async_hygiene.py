"""REPRO004 — async hygiene: the stream event loop only moves bytes.

The streaming contract (streamed ≡ in-process, bounded backpressure) depends
on the asyncio loop staying responsive: :class:`~repro.stream.node.CameraNode`
and :class:`~repro.stream.receiver.StreamReceiver` run every capture and
solve on a worker executor (``loop.run_in_executor``) and keep only byte
movement on the loop.  A single blocking call inside an ``async def`` —
``time.sleep``, a synchronous socket operation, a direct ``capture``/solve —
stalls *every* stream multiplexed on that loop, which is precisely the
failure mode the fleet-scale receiver hub (ROADMAP item 1) cannot afford.

The rule walks ``async def`` bodies in :mod:`repro.stream` (skipping nested
``def``/``lambda`` bodies, which are exactly what gets shipped *to* the
executor) and flags known-blocking calls.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro._lint.engine import Finding, ModuleContext
from repro._lint.rules.base import Rule, dotted_name

#: Attribute/function names whose direct call does heavy numpy/BLAS work or
#: sleeps — never to run on the event loop itself.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
    }
)

#: Method names of the capture/solve families: CPU-bound library work that
#: must be dispatched via ``run_in_executor`` from async code.
BLOCKING_METHODS = frozenset(
    {
        "capture",
        "capture_batch",
        "capture_scene",
        "capture_sequence",
        "capture_scene_sequence",
        "reconstruct_frame",
        "reconstruct_tiled",
        "solve_tile",
        "solve_staged",
    }
)

#: Synchronous socket entry points (asyncio transports replace all of these).
_SYNC_SOCKET_PREFIXES = ("socket.",)


def _is_blocking(name: str) -> str:
    """Classify a dotted call name; return a reason string or ``""``."""
    if name in BLOCKING_CALLS:
        return f"`{name}` sleeps on the event loop"
    if name.startswith(_SYNC_SOCKET_PREFIXES):
        return f"synchronous socket operation `{name}`"
    terminal = name.split(".")[-1]
    if terminal in BLOCKING_METHODS:
        return f"direct `{terminal}` call (CPU-bound capture/solve work)"
    return ""


class _AsyncBodyVisitor(ast.NodeVisitor):
    """Collect Call nodes that execute directly on the event loop."""

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []
        self._async_depth = 0

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        for child in node.body:
            self.visit(child)
        self._async_depth -= 1

    def _visit_sync_scope(self, node: ast.AST) -> None:
        # A nested def/lambda is not executed by the loop when defined — it
        # is typically the very thunk handed to run_in_executor.
        saved = self._async_depth
        self._async_depth = 0
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._async_depth = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_sync_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_sync_scope(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth > 0:
            self.calls.append(node)
        self.generic_visit(node)


class AsyncHygieneRule(Rule):
    rule_id = "REPRO004"
    contract = "async hygiene: no blocking calls on the stream event loop"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.is_library:
            return
        if context.module_rel is None or not context.module_rel.startswith(
            "repro/stream/"
        ):
            return
        visitor = _AsyncBodyVisitor()
        visitor.visit(context.tree)
        for call in visitor.calls:
            name = dotted_name(call.func)
            if name is None:
                continue
            reason = _is_blocking(name)
            if reason:
                yield self.finding(
                    context,
                    call,
                    f"blocking call inside async def: {reason}",
                    hint=(
                        "dispatch through loop.run_in_executor (see "
                        "CameraNode._run / FairSolveScheduler._worker) or use "
                        "the asyncio equivalent; the loop must only move bytes"
                    ),
                )


RULE = AsyncHygieneRule()
