"""Integration tests of the seed-only side channel (sensor -> receiver).

The architectural point of the paper is that Φ never travels: the receiver
regenerates it from the CA seed.  These tests exercise that hand-off as a
realistic protocol: serialise the frame to plain data (samples + seed +
parameters), "transmit" it, rebuild everything on the other side.
"""

import json

import numpy as np

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.operator import measurement_matrix_from_seed
from repro.recon.pipeline import reconstruct_samples
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


def serialise(frame):
    """What actually needs to cross the channel."""
    return json.dumps(
        {
            "samples": frame.samples.tolist(),
            "seed_state": frame.seed_state.tolist(),
            "rule": frame.rule_number,
            "steps_per_sample": frame.steps_per_sample,
            "warmup_steps": frame.warmup_steps,
            "rows": frame.config.rows,
            "cols": frame.config.cols,
        }
    )


class TestSeedOnlyChannel:
    def test_receiver_reconstructs_from_serialised_frame(self):
        config = SensorConfig(rows=32, cols=32)
        imager = CompressiveImager(config, seed=77)
        scene = make_scene("blobs", (32, 32), seed=3)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        frame = imager.capture(conversion.convert(scene), n_samples=400)

        payload = json.loads(serialise(frame))

        phi = measurement_matrix_from_seed(
            np.array(payload["seed_state"], dtype=np.uint8),
            len(payload["samples"]),
            (payload["rows"], payload["cols"]),
            rule=payload["rule"],
            steps_per_sample=payload["steps_per_sample"],
            warmup_steps=payload["warmup_steps"],
        )
        result = reconstruct_samples(
            phi,
            np.array(payload["samples"], dtype=float),
            (payload["rows"], payload["cols"]),
            max_iterations=150,
            reference=frame.digital_image,
        )
        assert result.metrics["psnr_db"] > 22.0

    def test_channel_payload_is_small(self):
        """The seed is rows+cols bits — negligible next to the samples themselves."""
        config = SensorConfig(rows=64, cols=64)
        imager = CompressiveImager(config, seed=78)
        frame = imager.capture_scene(make_scene("natural", (64, 64), seed=4), n_samples=100)
        seed_bits = frame.seed_state.size
        phi_bits_if_transmitted = frame.n_samples * config.n_pixels
        assert seed_bits == 128
        assert seed_bits < phi_bits_if_transmitted / 1000

    def test_wrong_seed_breaks_reconstruction(self):
        """Using a different seed at the receiver must destroy the image."""
        config = SensorConfig(rows=32, cols=32)
        imager = CompressiveImager(config, seed=79)
        scene = make_scene("blobs", (32, 32), seed=5)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        frame = imager.capture(conversion.convert(scene), n_samples=400)

        wrong_seed = frame.seed_state.copy()
        wrong_seed[:8] ^= 1  # corrupt the seed
        wrong_phi = measurement_matrix_from_seed(
            wrong_seed, frame.n_samples, (32, 32),
            steps_per_sample=frame.steps_per_sample, warmup_steps=frame.warmup_steps,
        )
        correct_phi = frame.measurement_matrix()
        wrong = reconstruct_samples(
            wrong_phi, frame.samples.astype(float), (32, 32), max_iterations=100,
            reference=frame.digital_image,
        )
        right = reconstruct_samples(
            correct_phi, frame.samples.astype(float), (32, 32), max_iterations=100,
            reference=frame.digital_image,
        )
        assert right.metrics["psnr_db"] > wrong.metrics["psnr_db"] + 5.0
