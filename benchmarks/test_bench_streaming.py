"""E15 — streaming pipeline throughput (capture → wire → decode).

The ``streaming`` group times the full camera-node service over the bounded
in-memory loopback transport, with reconstruction disabled so the numbers
isolate the streaming machinery itself (capture in a worker, v2 frame
encoding, chunk framing, transport hand-off, incremental chunk parsing and
frame decoding):

* ``test_stream_loopback_64x64_video`` — an 8-frame 64x64 video stream with
  seed-once GOPs: the sustained frames-per-second of a single-chip node;
* ``test_stream_loopback_tiled_256x256`` — one 256x256 mosaic frame (16
  tiles of 64x64) streamed tile-by-tile through ``iter_capture``.

Both are wired into ``benchmarks/baseline.json``, so CI's regression gate
(``benchmarks/check_regression.py``) guards the streaming hot path exactly
like the capture engines.
"""

import asyncio

import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.shard import TiledSensorArray
from repro.sensor.video import VideoSequencer
from repro.stream.node import CameraNode
from repro.stream.receiver import StreamReceiver
from repro.stream.transport import LoopbackTransport

N_VIDEO_FRAMES = 8


def _stream_video_once():
    sequencer = VideoSequencer(
        CompressiveImager(SensorConfig(), seed=2018),
        samples_per_frame=512,
        seed=2018,
    )
    scenes = [
        make_scene("natural", (64, 64), seed=index) for index in range(N_VIDEO_FRAMES)
    ]

    async def scenario():
        transport = LoopbackTransport(max_buffered=4)
        node = CameraNode(transport, gop_size=4)
        receiver = StreamReceiver(reconstruct=False)
        send_task = asyncio.create_task(
            node.stream_video(sequencer, scenes, keep_digital_image=False)
        )
        result = await receiver.run(transport)
        await send_task
        return result

    return asyncio.run(scenario())


def _stream_tiled_once():
    array = TiledSensorArray(
        (256, 256),
        tile_shape=(64, 64),
        compression_ratio=0.1,
        executor="serial",
        seed=2018,
    )
    scene = make_scene("natural", (256, 256), seed=7)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)

    async def scenario():
        transport = LoopbackTransport(max_buffered=4)
        node = CameraNode(transport)
        receiver = StreamReceiver(reconstruct=False)
        send_task = asyncio.create_task(
            node.stream_tiled(array, current, keep_digital_image=False)
        )
        result = await receiver.run(transport)
        await send_task
        return result

    return asyncio.run(scenario())


@pytest.mark.benchmark(group="streaming")
def test_stream_loopback_64x64_video(benchmark):
    """Loopback frames/sec for a single-chip 512-sample video stream."""
    result = benchmark.pedantic(_stream_video_once, rounds=3, iterations=1)
    assert result.n_frames == N_VIDEO_FRAMES
    frames_per_second = N_VIDEO_FRAMES / benchmark.stats.stats.median
    print(f"\nloopback 64x64 video: {frames_per_second:.1f} frames/s "
          f"({result.n_bytes} bytes for {result.n_frames} frames)")


@pytest.mark.benchmark(group="streaming")
def test_stream_loopback_tiled_256x256(benchmark):
    """Loopback wall-clock for one 16-tile 256x256 mosaic frame."""
    result = benchmark.pedantic(_stream_tiled_once, rounds=3, iterations=1)
    assert result.n_frames == 1
    assert result.frames[0].capture.n_tiles == 16
    print(f"\nloopback tiled 256x256: {benchmark.stats.stats.median * 1e3:.1f} ms "
          f"per mosaic frame ({result.n_bytes} bytes)")
