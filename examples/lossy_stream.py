"""Runnable demo: streaming over a lossy channel, with the loop closed.

A camera node streams a short video over a channel that deterministically
drops a tenth of its chunks.  Three layers of the resilience stack show up
in the output:

1. **Graceful degradation** — the resilient hub learns each frame's chunk
   expectations from the wire, masks the rows of Φ whose samples died with
   the dropped chunks, and still reconstructs *every* frame from whatever
   survived (a partial-Φ solve), reporting exactly what was lost.
2. **Erasure coding** — with ``parity=True`` the node ships one XOR parity
   chunk per frame, so any single lost segment is rebuilt for free and
   never even shows up as sample loss.
3. **Closed-loop rate control** — over a duplex channel the hub ships
   delivery ACKs back to the node, whose AIMD :class:`BitrateGovernor`
   backs the per-frame sample budget off under loss and climbs back to
   the open-loop rate when the channel is clean.

See docs/OPERATIONS.md for the operator's guide to the loss and feedback
machinery, and tests/stream/test_fault_injection.py for the pinned
loss-accounting semantics this demo prints.

Run:  python examples/lossy_stream.py
"""

import asyncio

import numpy as np

from repro import (
    BitrateGovernor,
    CameraNode,
    CompressiveImager,
    LoopbackTransport,
    ReceiverHub,
    SensorConfig,
    make_scene,
)
from repro.sensor.video import VideoSequencer
from repro.stream.fault import LossyTransport
from repro.stream.transport import loopback_duplex_pair

N_FRAMES = 6
CONFIG = SensorConfig(rows=16, cols=16)
SCENES = [make_scene("blobs", (16, 16), seed=index) for index in range(N_FRAMES)]


def make_sequencer():
    return VideoSequencer(
        CompressiveImager(CONFIG, seed=7), samples_per_frame=48, seed=7
    )


async def lossy_stream(drop_rate, *, parity):
    """One video over a drop_rate channel into a resilient hub."""
    transport = LoopbackTransport(max_buffered=8)
    lossy = LossyTransport(transport, seed=13, drop_rate=drop_rate)
    node = CameraNode(
        lossy, gop_size=2, segments_per_frame=4, parity=parity
    )
    hub = ReceiverHub(resilient=True, max_iterations=20)
    send = asyncio.create_task(
        node.stream_video(make_sequencer(), SCENES, keep_digital_image=False)
    )
    results = await hub.attach(transport, expected_streams=1)
    await send
    await hub.close()
    return lossy, hub, results[0]


async def closed_loop(drop_rate):
    """The same channel, duplex, with receiver feedback driving the rate."""
    node_end, hub_end = loopback_duplex_pair(max_buffered=4)
    lossy = LossyTransport(node_end, seed=21, drop_rate=drop_rate)
    governor = BitrateGovernor(closed_loop=True, min_samples=12, aimd_increase=4)
    node = CameraNode(
        lossy, gop_size=2, segments_per_frame=2, governor=governor, feedback=True
    )
    hub = ReceiverHub(resilient=True, reconstruct=False, feedback=True)
    send = asyncio.create_task(
        node.stream_video(make_sequencer(), SCENES, keep_digital_image=False)
    )
    results = await hub.attach(hub_end, expected_streams=1)
    stats = await send
    await hub.close()
    return governor, stats, results[0]


def report(label, lossy, hub, result):
    stats = hub.stats()
    losses = hub.session_stats[1].frame_loss
    samples = [
        f"{r.n_samples_received}/{r.n_samples_expected}" for r in losses
    ]
    finite = all(
        np.isfinite(frame.reconstruction.image).all() for frame in result.frames
    )
    print(f"{label}:")
    print(f"  chunks dropped on the wire : {len(lossy.dropped)}")
    print(f"  chunks recovered by parity : {stats.n_recovered_chunks}")
    print(f"  partial frames             : {stats.n_partial_frames}")
    print(f"  samples per frame          : {' '.join(samples)}")
    print(f"  frames reconstructed       : {result.n_frames}/{N_FRAMES} "
          f"(all finite: {finite})\n")


def main() -> None:
    print(f"Streaming {N_FRAMES} frames of 16x16 video over a lossy channel\n")

    lossy, hub, result = asyncio.run(lossy_stream(0.0, parity=False))
    report("clean channel (reference)", lossy, hub, result)

    lossy, hub, result = asyncio.run(lossy_stream(0.12, parity=False))
    report("12% chunk loss, partial-phi solves", lossy, hub, result)

    lossy, hub, result = asyncio.run(lossy_stream(0.12, parity=True))
    report("12% chunk loss + XOR parity", lossy, hub, result)

    governor, stats, result = asyncio.run(closed_loop(0.25))
    print("25% chunk loss, closed loop (AIMD rate control):")
    print(f"  frames streamed            : {stats.n_frames}/{N_FRAMES}")
    print(f"  loss events fed back       : {governor.n_loss_events}")
    print(f"  sample budget trace        : "
          f"{' '.join(str(s) for s in stats.samples_per_frame)}")
    print("\nEvery frame reconstructed at every loss rate; lost chunks became "
          "masked rows of Phi, parity erased single losses outright, and the "
          "governor backed the rate off exactly when the receiver said so.")


if __name__ == "__main__":
    main()
