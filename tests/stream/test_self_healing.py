"""Self-healing streams: retransmission, reconnect-with-resume, deadlines.

The session-durability layer of PR 10, pinned at every level:

* **unit** — the :class:`~repro.stream.node.RetransmitBuffer` window
  discipline and the :class:`~repro.stream.node.ReconnectSupervisor`
  backoff schedule, both to exact numbers under a
  :class:`~repro.telemetry.ManualClock` (no wall-clock sleeps anywhere in
  this file);
* **session** — NACK-at-barrier deferral, repair-completes-whole, grace
  expiry at the exact firing time, the stalled-stream timer, and the
  zero-fault inertness of the whole deadline path;
* **hub** — park / resume / grace-expiry / idle-reap / drain, and the
  typed :class:`~repro.stream.hub.HubPortInUseError` a reconnect
  supervisor treats as retryable;
* **end to end** (``chaos``-marked) — NACK repair over a live duplex
  loopback, a mid-GOP kill healed by reconnect-with-resume
  byte-identically, and Gilbert–Elliott burst loss where selective repeat
  strictly beats the PR-8 resilient baseline on the same seed.
"""

import asyncio

import numpy as np
import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.fault import DisconnectingTransport, GilbertElliottTransport
from repro.stream.hub import (
    DuplicateStreamIdError,
    HubPortInUseError,
    ReceiverHub,
    SessionResumeError,
)
from repro.stream.node import (
    CameraNode,
    ReconnectExhaustedError,
    ReconnectSupervisor,
    RetransmitBuffer,
)
from repro.stream.protocol import (
    Chunk,
    ChunkDecoder,
    ChunkType,
    NackRequest,
    SessionResume,
    decode_nack_request,
    encode_chunk,
    encode_session_resume,
)
from repro.stream.receiver import StreamReceiver
from repro.stream.session import StreamSession
from repro.stream.transport import LoopbackTransport, loopback_duplex_pair
from repro.telemetry import ManualClock, Telemetry
from repro.utils.rng import derive_seed, new_rng


CONFIG = SensorConfig(rows=16, cols=16)


def run(coro):
    return asyncio.run(coro)


class RecordingTransport:
    """Swallows every sent slice into a list (no receiver on the other end)."""

    def __init__(self):
        self.slices = []
        self.closed = False

    async def send(self, data):
        self.slices.append(bytes(data))

    async def recv(self):
        return None

    async def close(self):
        self.closed = True


class InlineScheduler:
    """Solve scheduler that runs the job synchronously on submit."""

    async def submit(self, key, fn):
        future = asyncio.get_running_loop().create_future()
        future.set_result(fn())
        return future


class DropOnceTransport:
    """Drop exactly the scripted send indices, once each — pure, no RNG."""

    def __init__(self, inner, drops):
        self.inner = inner
        self._drops = set(drops)
        self.n_sends = 0
        self.dropped = []

    async def send(self, data):
        index = self.n_sends
        self.n_sends += 1
        if index in self._drops:
            self._drops.discard(index)
            self.dropped.append(index)
            return
        await self.inner.send(data)

    async def recv(self):
        return await self.inner.recv()

    async def close(self):
        await self.inner.close()


def _sequencer(seed=7, samples=50):
    return VideoSequencer(
        CompressiveImager(CONFIG, seed=seed), samples_per_frame=samples, seed=seed
    )


def _scenes(n, shape=(16, 16), seed=0):
    return [make_scene("blobs", shape, seed=seed + index) for index in range(n)]


async def _record_video_chunks(
    n_frames=4, *, segments_per_frame=4, parity=True, gop_size=4
):
    """Capture a video stream's exact chunk slices without a receiver."""
    transport = RecordingTransport()
    node = CameraNode(
        transport,
        gop_size=gop_size,
        segments_per_frame=segments_per_frame,
        parity=parity,
    )
    stats = await node.stream_video(_sequencer(), _scenes(n_frames))
    return transport.slices, stats


def _decode_all(slices):
    decoder = ChunkDecoder()
    chunks = []
    for data in slices:
        chunks.extend(decoder.feed(data))
    return chunks


def _manual_session(**options):
    """A resilient session on a ManualClock starting at t=0."""
    clock = ManualClock()
    telemetry = Telemetry(enabled=False, clock=clock)
    session = StreamSession(
        1,
        InlineScheduler(),
        resilient=True,
        reconstruct=False,
        telemetry=telemetry,
        **options,
    )
    return session, clock


async def _feed(session, chunks):
    for chunk in chunks:
        await session.handle_chunk(chunk)


# =========================================================================
# RetransmitBuffer: the bounded selective-repeat window
# =========================================================================


class TestRetransmitBuffer:
    def test_capacity_evicts_oldest_first(self):
        buffer = RetransmitBuffer(3)
        for sequence in range(5):
            buffer.add(sequence, bytes([sequence]), frame_index=0, now=0.0)
        assert len(buffer) == 3
        assert buffer.n_evicted_capacity == 2
        assert [entry.sequence for entry in buffer.pending()] == [2, 3, 4]
        assert buffer.get(0, now=0.0) is None
        assert buffer.get(4, now=0.0).encoded == b"\x04"

    def test_ack_evicts_whole_frames_but_not_frameless_chunks(self):
        buffer = RetransmitBuffer(10)
        buffer.add(0, b"h", frame_index=None, now=0.0)  # header/end chunks
        buffer.add(1, b"a", frame_index=0, now=0.0)
        buffer.add(2, b"b", frame_index=1, now=0.0)
        buffer.add(3, b"c", frame_index=2, now=0.0)
        assert buffer.evict_acked(1) == 2
        assert buffer.n_evicted_acked == 2
        assert [entry.sequence for entry in buffer.pending()] == [0, 3]

    def test_aged_entries_vanish_on_lookup(self):
        buffer = RetransmitBuffer(10, max_age=1.0)
        buffer.add(7, b"x", frame_index=0, now=0.0)
        assert buffer.get(7, now=1.0) is not None  # exactly at the bound: kept
        assert buffer.get(7, now=1.001) is None  # past it: gone
        assert buffer.n_evicted_aged == 1
        assert len(buffer) == 0

    def test_aged_sweep_on_add(self):
        buffer = RetransmitBuffer(10, max_age=1.0)
        buffer.add(1, b"a", frame_index=0, now=0.0)
        buffer.add(2, b"b", frame_index=0, now=2.0)  # sweeps the stale entry
        assert buffer.n_evicted_aged == 1
        assert [entry.sequence for entry in buffer.pending()] == [2]

    def test_clear_forgets_everything(self):
        buffer = RetransmitBuffer(4)
        buffer.add(1, b"a", frame_index=0, now=0.0)
        buffer.clear()
        assert len(buffer) == 0 and buffer.pending() == []

    def test_zero_capacity_refused(self):
        with pytest.raises(ValueError):
            RetransmitBuffer(0)
        with pytest.raises(ValueError):
            RetransmitBuffer(4, max_age=0.0)


# =========================================================================
# ReconnectSupervisor: exact backoff under ManualClock
# =========================================================================


def _expected_delays(seed, n, *, base_delay=0.05, max_delay=2.0, jitter=0.25):
    """Replay the supervisor's jittered schedule from its derived RNG."""
    rng = new_rng(derive_seed(seed, "reconnect-supervisor"))
    return [
        min(max_delay, base_delay * 2.0 ** (attempt - 1))
        * (1.0 + jitter * float(rng.random()))
        for attempt in range(1, n + 1)
    ]


class TestReconnectSupervisor:
    def _supervised(self, failures, *, clock=None, **options):
        """A supervisor whose connect fails ``failures`` times, then succeeds."""
        clock = clock if clock is not None else ManualClock()
        attempts = []

        async def sleep(delay):
            clock.advance(delay)

        async def connect():
            attempts.append(clock.now())
            if len(attempts) <= failures:
                raise ConnectionRefusedError("hub is down")
            return RecordingTransport()

        supervisor = ReconnectSupervisor(
            connect, clock=clock, sleep=sleep, **options
        )
        return supervisor, attempts

    def test_backoff_schedule_replays_from_the_derived_seed(self):
        supervisor, attempts = self._supervised(3, seed=7)
        transport = run(supervisor.acquire())
        assert isinstance(transport, RecordingTransport)
        expected = _expected_delays(7, 3)
        assert supervisor.delays == pytest.approx(expected)
        # Attempt 0 fires immediately; attempt k at the delay prefix sum.
        firing = [0.0]
        for delay in expected:
            firing.append(firing[-1] + delay)
        assert attempts == pytest.approx(firing)
        assert supervisor.attempt_times == pytest.approx(firing)
        assert supervisor.n_attempts == 4
        assert supervisor.n_reconnects == 1

    def test_jitter_free_schedule_is_pure_doubling(self):
        supervisor, _ = self._supervised(5, jitter=0.0)
        run(supervisor.acquire())
        assert supervisor.delays == pytest.approx([0.05, 0.1, 0.2, 0.4, 0.8])

    def test_max_delay_caps_the_doubling(self):
        supervisor, _ = self._supervised(4, jitter=0.0, max_delay=0.2)
        run(supervisor.acquire())
        assert supervisor.delays == pytest.approx([0.05, 0.1, 0.2, 0.2])

    def test_exhaustion_raises_typed_with_the_cause_chained(self):
        supervisor, attempts = self._supervised(99, max_attempts=3)
        with pytest.raises(ReconnectExhaustedError) as info:
            run(supervisor.acquire())
        assert isinstance(info.value, ConnectionError)
        assert isinstance(info.value.__cause__, ConnectionRefusedError)
        assert supervisor.n_attempts == 3
        assert len(attempts) == 3

    def test_non_retryable_errors_pass_straight_through(self):
        clock = ManualClock()

        async def connect():
            raise ValueError("not a transport problem")

        supervisor = ReconnectSupervisor(connect, clock=clock)
        with pytest.raises(ValueError):
            run(supervisor.acquire())
        assert supervisor.n_attempts == 1

    def test_hub_port_in_use_is_retryable_by_default(self):
        # Satellite: a hub still restarting (bind refused) must look like a
        # transient to the node's supervisor, not a fatal error.
        calls = []

        async def connect():
            calls.append(True)
            if len(calls) == 1:
                raise HubPortInUseError("hub cannot bind 127.0.0.1:9000")
            return RecordingTransport()

        clock = ManualClock()

        async def sleep(delay):
            clock.advance(delay)

        supervisor = ReconnectSupervisor(connect, clock=clock, sleep=sleep)
        run(supervisor.acquire())
        assert supervisor.n_attempts == 2
        assert supervisor.n_reconnects == 1

    def test_parameter_validation(self):
        async def connect():
            return RecordingTransport()

        with pytest.raises(ValueError):
            ReconnectSupervisor(connect, max_attempts=0)
        with pytest.raises(ValueError):
            ReconnectSupervisor(connect, jitter=-0.1)


# =========================================================================
# Session deadlines: NACK-at-barrier, repair, grace expiry, stalled streams
# =========================================================================


class TestSessionDeadlines:
    """The deferral machinery, driven to exact firing times."""

    def test_incomplete_frame_at_barrier_nacks_once_and_defers(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            session, _ = _manual_session(frame_deadline=2.0)
            # Frame 0 is sequences 1-5 (4 segments + parity), barrier at 6.
            # Drop segment 1 (seq 2) AND parity (seq 5): unrecoverable by
            # parity, so the barrier must defer and NACK.
            await _feed(
                session, [c for c in chunks[:7] if c.sequence not in (2, 5)]
            )
            return session

        session = run(scenario())
        assert session.stats.n_nacks_sent == 1
        assert session.stats.n_frames == 0  # deferred, not settled
        control = session.take_outgoing_control()
        assert [chunk_type for chunk_type, _ in control] == [
            ChunkType.CONTROL_NACK
        ]
        request = decode_nack_request(control[0][1])
        assert request == NackRequest(frame_index=0, sequences=(2, 5))

    def test_retransmit_completes_the_deferred_frame_whole(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            session, _ = _manual_session(frame_deadline=2.0)
            await _feed(
                session, [c for c in chunks[:7] if c.sequence not in (2, 5)]
            )
            # The node answers the NACK: the dropped chunks re-arrive
            # verbatim under their original sequence numbers.
            await _feed(session, [chunks[2], chunks[5]])
            settled_after_repair = session.stats.n_frames
            await _feed(session, chunks[7:])
            result = await session.finish()
            return session, settled_after_repair, result

        session, settled_after_repair, result = run(scenario())
        assert settled_after_repair == 1  # the repair itself settled frame 0
        assert result.n_frames == 4
        assert session.stats.n_deadline_salvages == 0
        assert session.missing_sequences == ()
        report = session.stats.frame_loss[0]
        assert report.clean
        assert report.n_samples_received == 50
        assert result.frames[0].sample_mask is None  # full-Φ, no mask

    def test_grace_lapses_at_the_exact_nack_grace_boundary(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            # nack_grace is its own knob: the deferral must time out on it,
            # not on the (longer) frame_deadline.
            session, _ = _manual_session(frame_deadline=5.0, nack_grace=2.0)
            await _feed(
                session, [c for c in chunks[:7] if c.sequence not in (2, 5)]
            )
            await session.check_deadlines(1.999)
            still_deferred = session.stats.n_frames == 0
            await session.check_deadlines(2.0)
            return session, still_deferred

        session, still_deferred = run(scenario())
        assert still_deferred
        assert session.stats.n_deadline_salvages == 1
        assert session.stats.n_frames == 1
        report = session.stats.frame_loss[0]
        assert not report.clean
        # Segment sizes are 12, 13, 12, 13 of 50: losing segment 1 costs 13.
        assert report.n_samples_received == 37

    def test_stalled_stream_nacks_on_the_frame_deadline_timer(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            session, _ = _manual_session(frame_deadline=2.0)
            # Segments 0, 2, 3 of frame 0 and nothing else: no barrier ever
            # arrives, so only the first-chunk-age timer can notice.
            await _feed(session, [c for c in chunks[:5] if c.sequence != 2])
            await session.check_deadlines(1.999)
            before_deadline = session.stats.n_nacks_sent
            await session.check_deadlines(2.0)
            after_deadline = session.stats.n_nacks_sent
            await session.check_deadlines(2.0)  # a frame NACKs exactly once
            await session.check_deadlines(3.0)
            once_only = session.stats.n_nacks_sent
            # Grace (= deadline) lapses at 2.0 + 2.0; EOF then salvages.
            await session.check_deadlines(4.0)
            await session.handle_eof()
            result = await session.finish()
            return session, before_deadline, after_deadline, once_only, result

        session, before, after, once_only, result = run(scenario())
        assert before == 0
        assert after == 1
        assert once_only == 1
        assert session.stats.n_deadline_salvages == 1
        assert result.n_frames == 1
        assert session.stats.frame_loss[0].n_samples_received == 37

    def test_stream_end_flushes_open_deferrals_as_salvages(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            session, _ = _manual_session(frame_deadline=30.0)
            await _feed(
                session, [c for c in chunks if c.sequence not in (2, 5)]
            )
            result = await session.finish()
            return session, result

        session, result = run(scenario())
        # The repair can no longer arrive once the stream ends: the open
        # grace window dies with it and the frame salvages partial.
        assert session.stats.n_nacks_sent == 1
        assert session.stats.n_deadline_salvages == 1
        assert result.n_frames == 4
        assert session.stats.frame_loss[0].n_samples_received == 37
        assert [r.clean for r in session.stats.frame_loss] == [
            False,
            True,
            True,
            True,
        ]

    def test_parity_coverable_frames_never_defer(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            session, _ = _manual_session(frame_deadline=2.0)
            # Only segment 1 lost: parity rebuilds it at the barrier, so
            # deferring would waste a round trip on a repair-for-free frame.
            await _feed(session, [c for c in chunks if c.sequence != 2])
            result = await session.finish()
            return session, result

        session, result = run(scenario())
        assert session.stats.n_nacks_sent == 0
        assert session.stats.n_recovered_chunks == 1
        assert result.n_frames == 4
        assert all(r.clean for r in session.stats.frame_loss)

    def test_zero_fault_deadline_path_is_inert(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            guarded, _ = _manual_session(frame_deadline=2.0, nack_grace=1.0)
            await _feed(guarded, chunks)
            guarded_result = await guarded.finish()
            plain, _ = _manual_session()
            await _feed(plain, chunks)
            plain_result = await plain.finish()
            return guarded, guarded_result, plain_result

        guarded, guarded_result, plain_result = run(scenario())
        assert guarded.stats.n_nacks_sent == 0
        assert guarded.stats.n_deadline_salvages == 0
        assert guarded_result.n_frames == plain_result.n_frames == 4
        for healed, baseline in zip(
            guarded_result.frames, plain_result.frames
        ):
            np.testing.assert_array_equal(
                healed.capture.samples, baseline.capture.samples
            )

    def test_deadline_knob_validation(self):
        with pytest.raises(ValueError):
            StreamSession(1, InlineScheduler(), frame_deadline=0.0)
        with pytest.raises(ValueError):
            StreamSession(1, InlineScheduler(), nack_grace=-1.0)


# =========================================================================
# Satellite: max_sequence_gap is a constructor parameter
# =========================================================================


class TestMaxSequenceGapParameter:
    def test_default_is_the_class_constant(self):
        session = StreamSession(1, InlineScheduler())
        assert session.max_sequence_gap == StreamSession.MAX_SEQUENCE_GAP == 4096

    def test_zero_or_negative_refused(self):
        with pytest.raises(ValueError):
            StreamSession(1, InlineScheduler(), max_sequence_gap=0)
        with pytest.raises(ValueError):
            StreamSession(1, InlineScheduler(), max_sequence_gap=-5)

    def test_narrow_window_books_big_jumps_as_corruption(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            session = StreamSession(
                1,
                InlineScheduler(),
                resilient=True,
                reconstruct=False,
                max_sequence_gap=2,
            )
            await session.handle_chunk(chunks[0])
            jumped = Chunk(
                chunk_type=chunks[1].chunk_type,
                stream_id=chunks[1].stream_id,
                sequence=10,  # gap of 9 > 2: implausible, not loss
                payload=chunks[1].payload,
            )
            await session.handle_chunk(jumped)
            return session

        session = run(scenario())
        assert session.stats.n_corrupt_chunks == 1
        assert session.missing_sequences == ()

    def test_jumps_inside_the_window_stay_loss(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            session = StreamSession(
                1,
                InlineScheduler(),
                resilient=True,
                reconstruct=False,
                max_sequence_gap=2,
            )
            await session.handle_chunk(chunks[0])
            await session.handle_chunk(chunks[3])  # gap of 2 <= 2: plausible
            return session

        session = run(scenario())
        assert session.missing_sequences == (1, 2)
        assert session.stats.n_corrupt_chunks == 0

    def test_hub_and_receiver_forward_the_knob(self):
        hub = ReceiverHub(reconstruct=False, max_sequence_gap=7)
        assert hub._open_session(1).max_sequence_gap == 7
        receiver = StreamReceiver(reconstruct=False, max_sequence_gap=9)
        assert receiver._new_hub()._open_session(1).max_sequence_gap == 9


# =========================================================================
# Node: answering NACKs verbatim from the retransmission buffer
# =========================================================================


class TestNodeNackAnswering:
    def test_buffered_chunks_are_resent_byte_for_byte(self):
        async def scenario():
            transport = RecordingTransport()
            node = CameraNode(
                transport,
                gop_size=4,
                segments_per_frame=4,
                parity=True,
                retransmit_capacity=32,
            )
            await node.stream_video(_sequencer(), _scenes(2))
            sent = list(transport.slices)
            transport.slices.clear()
            await node._answer_nack(NackRequest(frame_index=0, sequences=(2, 5)))
            return node, sent, list(transport.slices)

        node, sent, resent = run(scenario())
        # The repair is the original wire bytes, original sequence numbers.
        assert resent == [sent[2], sent[5]]
        assert node.n_retransmits == 2
        assert node.n_nacks_answered == 1
        assert node.n_nack_misses == 0

    def test_evicted_sequences_count_as_misses(self):
        async def scenario():
            transport = RecordingTransport()
            node = CameraNode(
                transport,
                gop_size=4,
                segments_per_frame=4,
                parity=True,
                retransmit_capacity=32,
            )
            await node.stream_video(_sequencer(), _scenes(2))
            transport.slices.clear()
            await node._answer_nack(
                NackRequest(frame_index=0, sequences=(999,))
            )
            return node, list(transport.slices)

        node, resent = run(scenario())
        assert resent == []
        assert node.n_nack_misses == 1
        assert node.n_nacks_answered == 0

    def test_reconnect_requires_a_retransmit_buffer(self):
        async def connect():
            return RecordingTransport()

        with pytest.raises(ValueError):
            CameraNode(
                RecordingTransport(),
                reconnect=ReconnectSupervisor(connect),
            )


# =========================================================================
# Hub durability: park / resume / expire / idle-reap / drain
# =========================================================================


def _manual_hub(**options):
    clock = ManualClock()
    telemetry = Telemetry(enabled=False, clock=clock)
    hub = ReceiverHub(
        resilient=True, reconstruct=False, telemetry=telemetry, **options
    )
    return hub, clock


async def _attach_slices(hub, slices, *, close=True):
    """Feed pre-recorded slices through one hub connection."""
    transport = LoopbackTransport(max_buffered=len(slices) + 1)
    for data in slices:
        await transport.send(data)
    if close:
        await transport.close()
    return await hub.attach(transport)


class TestHubParkAndResume:
    def test_mid_stream_eof_parks_instead_of_salvaging(self):
        async def scenario():
            hub, _ = _manual_hub(resume_grace=10.0)
            slices, _ = await _record_video_chunks()
            # Header + frames 0 and 1 (13 chunks), then EOF mid-stream.
            results = await _attach_slices(hub, slices[:13])
            return hub, results

        hub, results = run(scenario())
        assert results == []
        stats = hub.stats()
        assert stats.n_parked == 1
        assert stats.n_parked_now == 1
        assert stats.n_completed == 0  # nothing settled: the node may return

    def test_resume_continues_the_stream_state_intact(self):
        async def scenario():
            hub, _ = _manual_hub(resume_grace=10.0)
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            await _attach_slices(hub, slices[:13])
            # The node reconnects: a SESSION_RESUME at the next sequence,
            # then the rest of the stream shifted one sequence up (the
            # resume chunk rides the normal forward numbering).
            resume = Chunk(
                chunk_type=ChunkType.SESSION_RESUME,
                stream_id=1,
                sequence=13,
                payload=encode_session_resume(
                    SessionResume(next_sequence=13, frame_index=1, epoch=1)
                ),
            )
            rest = [
                Chunk(
                    chunk_type=chunk.chunk_type,
                    stream_id=chunk.stream_id,
                    sequence=chunk.sequence + 1,
                    payload=chunk.payload,
                )
                for chunk in chunks[13:]
            ]
            transport = LoopbackTransport(max_buffered=len(rest) + 2)
            await transport.send(encode_chunk(resume))
            for chunk in rest:
                await transport.send(encode_chunk(chunk))
            await transport.close()
            results = await hub.attach(transport)
            return hub, results

        hub, results = run(scenario())
        assert len(results) == 1
        assert results[0].n_frames == 4
        assert results[0].announced_frames == 4
        stats = hub.stats()
        assert stats.n_parked == 1
        assert stats.n_resumed == 1
        assert stats.n_resumes == 1  # the session absorbed the resume chunk
        assert stats.n_parked_now == 0
        assert stats.n_lost_chunks == 0
        session = hub.session_stats[1]
        assert all(report.clean for report in session.frame_loss)

    def test_reap_salvages_parked_state_after_the_exact_grace(self):
        async def scenario():
            hub, clock = _manual_hub(resume_grace=10.0)
            slices, _ = await _record_video_chunks()
            await _attach_slices(hub, slices[:13])
            clock.advance(10.0)
            await hub.reap()  # at exactly the grace bound: still parked
            at_bound = hub.stats().n_parked_now
            clock.advance(0.5)
            await hub.reap()
            return hub, at_bound

        hub, at_bound = run(scenario())
        assert at_bound == 1
        stats = hub.stats()
        assert stats.n_parked_now == 0
        assert stats.n_resume_expired == 1
        assert stats.n_reaped == 1
        assert stats.n_completed == 1
        assert hub.completed[0].n_frames == 2  # frames 0-1 salvaged

    def test_late_resume_is_refused_and_the_state_salvaged(self):
        async def scenario():
            hub, clock = _manual_hub(resume_grace=10.0)
            slices, _ = await _record_video_chunks()
            await _attach_slices(hub, slices[:13])
            clock.advance(10.5)
            resume = Chunk(
                chunk_type=ChunkType.SESSION_RESUME,
                stream_id=1,
                sequence=13,
                payload=encode_session_resume(
                    SessionResume(next_sequence=13, frame_index=1, epoch=1)
                ),
            )
            transport = LoopbackTransport(max_buffered=2)
            await transport.send(encode_chunk(resume))
            await transport.close()
            error = None
            try:
                await hub.attach(transport)
            except SessionResumeError as caught:
                error = caught
            return hub, error

        hub, error = run(scenario())
        assert error is not None
        stats = hub.stats()
        assert stats.n_resume_expired == 1
        assert stats.n_resumed == 0
        assert stats.n_completed == 1  # salvaged on refusal
        assert hub.failures == [error]

    def test_resume_for_an_unknown_stream_is_refused(self):
        async def scenario():
            hub, _ = _manual_hub(resume_grace=10.0)
            resume = Chunk(
                chunk_type=ChunkType.SESSION_RESUME,
                stream_id=5,
                sequence=0,
                payload=encode_session_resume(
                    SessionResume(next_sequence=0, frame_index=0, epoch=1)
                ),
            )
            transport = LoopbackTransport(max_buffered=2)
            await transport.send(encode_chunk(resume))
            await transport.close()
            try:
                await hub.attach(transport)
            except SessionResumeError as caught:
                return hub, caught
            return hub, None

        _, error = run(scenario())
        assert error is not None
        assert "no parked session" in str(error)

    def test_a_parked_id_refuses_fresh_streams(self):
        async def scenario():
            hub, _ = _manual_hub(resume_grace=10.0)
            slices, _ = await _record_video_chunks()
            await _attach_slices(hub, slices[:13])
            try:
                await _attach_slices(hub, slices[:1])  # a fresh STREAM_START
            except DuplicateStreamIdError as caught:
                return caught
            return None

        error = run(scenario())
        assert error is not None
        assert "parked awaiting resume" in str(error)

    def test_idle_sessions_are_reaped_past_the_timeout(self):
        async def scenario():
            hub, clock = _manual_hub(idle_timeout=5.0)
            slices, _ = await _record_video_chunks()
            transport = LoopbackTransport(max_buffered=20)
            for data in slices[:13]:
                await transport.send(data)
            attach_task = asyncio.create_task(hub.attach(transport))
            for _ in range(200):  # let the connection drain what arrived
                if hub.session_stats.get(1, None) is not None:
                    if hub.session_stats[1].n_chunks >= 13:
                        break
                await asyncio.sleep(0)
            clock.advance(5.0)
            await hub.reap()  # exactly at the bound: still live
            at_bound = hub.stats().n_active
            clock.advance(0.5)
            await hub.reap()
            reaped = hub.stats()
            await transport.close()
            late_results = await attach_task
            return hub, at_bound, reaped, late_results

        hub, at_bound, reaped, late_results = run(scenario())
        assert at_bound == 1
        assert reaped.n_active == 0
        assert reaped.n_reaped == 1
        assert reaped.n_completed == 1
        assert hub.completed[0].n_frames == 2
        assert late_results == []  # the sealed session never double-settles

    def test_drain_settles_parked_sessions_for_shutdown(self):
        async def scenario():
            hub, _ = _manual_hub(resume_grace=10.0)
            slices, _ = await _record_video_chunks()
            await _attach_slices(hub, slices[:13])
            await hub.drain()
            return hub, hub.stats()

        _, stats = run(scenario())
        assert stats.n_parked_now == 0
        assert stats.n_drained == 1
        assert stats.n_completed == 1

    def test_reap_drives_session_frame_deadlines(self):
        async def scenario():
            hub, clock = _manual_hub(frame_deadline=2.0)
            slices, _ = await _record_video_chunks()
            transport = LoopbackTransport(max_buffered=20)
            # Frame 0 missing segment 1 and parity, barrier delivered:
            # the session defers and NACKs; only reap() can expire it.
            chunks = _decode_all(slices)
            for chunk in chunks[:7]:
                if chunk.sequence not in (2, 5):
                    await transport.send(encode_chunk(chunk))
            attach_task = asyncio.create_task(hub.attach(transport))
            for _ in range(200):
                if hub.session_stats.get(1, None) is not None:
                    if hub.session_stats[1].n_nacks_sent:
                        break
                await asyncio.sleep(0)
            deferred = hub.stats()
            clock.advance(2.0)
            await hub.reap()
            salvaged = hub.stats()
            await transport.close()
            await attach_task
            return deferred, salvaged

        deferred, salvaged = run(scenario())
        assert deferred.n_nacks_sent == 1
        assert deferred.n_frames == 0
        assert salvaged.n_deadline_salvages == 1
        assert salvaged.n_frames == 1


# =========================================================================
# Satellite: typed bind errors on an already-bound port
# =========================================================================


class TestHubPortInUse:
    def test_serve_on_a_taken_port_raises_typed_with_the_port(self):
        async def scenario():
            first = ReceiverHub(reconstruct=False)
            second = ReceiverHub(reconstruct=False)
            _, port = await first.serve()
            try:
                await second.serve(port=port)
            except HubPortInUseError as error:
                return port, error
            finally:
                await first.close()
                await second.close()
            return port, None

        port, error = run(scenario())
        assert error is not None
        assert str(port) in str(error)
        assert isinstance(error, OSError)  # retryable by the supervisor

    def test_serve_metrics_on_a_taken_port_raises_typed(self):
        async def scenario():
            first = ReceiverHub(reconstruct=False)
            second = ReceiverHub(reconstruct=False)
            _, port = await first.serve_metrics()
            try:
                await second.serve_metrics(port=port)
            except HubPortInUseError as error:
                return port, error
            finally:
                await first.close()
                await second.close()
            return port, None

        port, error = run(scenario())
        assert error is not None
        assert str(port) in str(error)
        assert "metrics" in str(error)


# =========================================================================
# End to end: NACK repair over a live duplex wire
# =========================================================================


@pytest.mark.chaos
class TestNackRepairEndToEnd:
    def test_selective_repeat_heals_a_burst_inside_one_frame(self):
        async def scenario():
            node_end, hub_end = loopback_duplex_pair(max_buffered=4)
            hub = ReceiverHub(
                resilient=True,
                reconstruct=False,
                feedback=True,
                frame_deadline=30.0,
            )
            # Frame 1 occupies sequences 7-11 (4 segments + parity), its
            # barrier is 12.  Dropping a segment AND the parity defeats
            # single-parity repair — only a NACK round trip can heal it.
            faulty = DropOnceTransport(node_end, drops={8, 11})
            node = CameraNode(
                faulty,
                gop_size=4,
                segments_per_frame=4,
                parity=True,
                feedback=True,
                retransmit_capacity=64,
            )
            send_task = asyncio.create_task(
                node.stream_video(_sequencer(), _scenes(8))
            )
            results = await hub.attach(hub_end, expected_streams=1)
            await send_task
            await hub.close()
            return hub, node, faulty, results[0]

        hub, node, faulty, result = run(scenario())
        assert faulty.dropped == [8, 11]
        stats = hub.stats()
        assert stats.n_nacks_sent == 1
        assert node.n_retransmits == 2
        assert node.n_nacks_answered == 1
        # The repair landed in time: the frame settled whole, no salvage.
        assert stats.n_deadline_salvages == 0
        assert result.n_frames == 8
        session = hub.session_stats[1]
        assert all(report.clean for report in session.frame_loss)
        assert session.n_reordered_chunks == 2  # the two repaired chunks


# =========================================================================
# End to end: mid-GOP kill healed by reconnect-with-resume
# =========================================================================


@pytest.mark.chaos
class TestKillAndReconnect:
    N_FRAMES = 6

    async def _clean_run(self):
        """The same stream over an unfaulted wire: the identity baseline."""
        transport = LoopbackTransport(max_buffered=64)
        hub = ReceiverHub(resilient=True, max_iterations=5)
        node = CameraNode(
            transport, gop_size=4, segments_per_frame=4, parity=True
        )
        send_task = asyncio.create_task(
            node.stream_video(_sequencer(), _scenes(self.N_FRAMES))
        )
        results = await hub.attach(transport, expected_streams=1)
        await send_task
        await hub.close()
        return results[0]

    def test_node_killed_mid_gop_resumes_byte_identically(self):
        async def scenario():
            clean = await self._clean_run()
            hub = ReceiverHub(
                resilient=True, max_iterations=5, resume_grace=60.0
            )
            node_end, hub_end = loopback_duplex_pair(max_buffered=64)
            # The cut lands on send index 9 — segment 2 of frame 1, mid-GOP
            # (the GOP keyframe was frame 0): the seed chain must survive.
            cutter = DisconnectingTransport(node_end, disconnect_after=9)
            attach_tasks = [asyncio.create_task(hub.attach(hub_end))]

            async def connect():
                # The old connection fully parks before the new one opens.
                await attach_tasks[0]
                new_node_end, new_hub_end = loopback_duplex_pair(
                    max_buffered=64
                )
                attach_tasks.append(
                    asyncio.create_task(hub.attach(new_hub_end))
                )
                return new_node_end

            reconnect = ReconnectSupervisor(connect)
            node = CameraNode(
                cutter,
                gop_size=4,
                segments_per_frame=4,
                parity=True,
                retransmit_capacity=64,
                reconnect=reconnect,
            )
            send_stats = await node.stream_video(
                _sequencer(), _scenes(self.N_FRAMES)
            )
            results = await attach_tasks[-1]
            await hub.close()
            return hub, node, reconnect, cutter, results[0], clean, send_stats

        hub, node, reconnect, cutter, healed, clean, send_stats = run(
            scenario()
        )
        assert cutter.disconnect_send == 9
        # The scripted fault maps one-to-one onto the recovery counters.
        assert node.n_resumes == 1
        assert reconnect.n_attempts == 1
        assert reconnect.n_reconnects == 1
        # The whole unacked window (sequences 0-9) replayed verbatim.
        assert node.n_resume_retransmits == 10
        stats = hub.stats()
        assert stats.n_parked == 1
        assert stats.n_resumed == 1
        assert stats.n_resumes == 1
        assert stats.n_resume_expired == 0
        assert stats.n_parked_now == 0
        session = hub.session_stats[1]
        # Replayed chunks 0-8 were already delivered (duplicates); chunk 9
        # was swallowed by the cut and reclaimed from the missing set.
        assert session.n_duplicate_chunks == 9
        assert session.n_reordered_chunks == 1
        assert session.n_lost_chunks == 0
        # Every frame of the healed stream reconstructs byte-identically to
        # the clean run: samples, and the reconstructed images themselves.
        assert send_stats.n_frames == self.N_FRAMES
        assert healed.n_frames == clean.n_frames == self.N_FRAMES
        assert all(report.clean for report in session.frame_loss)
        for healed_frame, clean_frame in zip(healed.frames, clean.frames):
            np.testing.assert_array_equal(
                healed_frame.capture.samples, clean_frame.capture.samples
            )
            assert healed_frame.reconstruction is not None
            assert (
                healed_frame.reconstruction.image.tobytes()
                == clean_frame.reconstruction.image.tobytes()
            )


# =========================================================================
# End to end: burst loss — NACK repair strictly beats the PR-8 baseline
# =========================================================================


@pytest.mark.chaos
class TestBurstLossImprovement:
    GE_SEED = 13
    N_FRAMES = 12

    async def _burst_run(self, *, nack):
        node_end, hub_end = loopback_duplex_pair(max_buffered=4)
        channel = GilbertElliottTransport(node_end, seed=self.GE_SEED)
        hub = ReceiverHub(
            resilient=True,
            reconstruct=False,
            feedback=True,
            # The PR-8 baseline is the same resilient closed loop with the
            # selective-repeat machinery off (no frame_deadline, no buffer).
            frame_deadline=30.0 if nack else None,
        )
        node = CameraNode(
            channel,
            gop_size=4,
            segments_per_frame=4,
            parity=True,
            feedback=True,
            retransmit_capacity=128 if nack else 0,
        )
        send_task = asyncio.create_task(
            node.stream_video(_sequencer(), _scenes(self.N_FRAMES))
        )
        results = await hub.attach(hub_end, expected_streams=1)
        await send_task
        await hub.close()
        return hub, node, channel, results[0]

    def test_nack_repair_strictly_improves_delivered_samples(self):
        async def scenario():
            baseline = await self._burst_run(nack=False)
            healed = await self._burst_run(nack=True)
            return baseline, healed

        baseline, healed = run(scenario())
        hub_a, node_a, channel_a, _ = baseline
        hub_b, node_b, channel_b, _ = healed

        def delivered(hub):
            session = hub.session_stats[1]
            return sum(report.n_samples_received for report in session.frame_loss)

        # The channel actually burst-dropped chunks in both runs, from the
        # identical seeded state walk.
        assert channel_a.dropped
        assert channel_b.dropped
        assert channel_a.n_bursts >= 1
        # The repair machinery actually ran...
        assert hub_b.stats().n_nacks_sent > 0
        assert node_b.n_retransmits > 0
        # ...and strictly improved delivery on the same seeded channel.
        assert delivered(healed[0]) > delivered(baseline[0])
        # The baseline never NACKs (no deadline): PR-8 semantics preserved.
        assert hub_a.stats().n_nacks_sent == 0
        assert node_a.n_retransmits == 0


# =========================================================================
# Acceptance: zero-fault byte-identity with every recovery knob armed
# =========================================================================


class TestZeroFaultByteIdentity:
    """Retransmission + resume + deadlines enabled, no faults injected →
    a streamed 64×64 video is byte-identical to today's pipeline."""

    N_FRAMES = 3
    CONFIG64 = SensorConfig(rows=64, cols=64)

    def _sequencer64(self):
        return VideoSequencer(
            CompressiveImager(self.CONFIG64, seed=2018),
            samples_per_frame=512,
            seed=2018,
        )

    def _scenes64(self):
        return [
            make_scene("blobs", (64, 64), seed=100 + index)
            for index in range(self.N_FRAMES)
        ]

    async def _baseline_run(self):
        transport = LoopbackTransport(max_buffered=64)
        hub = ReceiverHub(resilient=True, max_iterations=5)
        node = CameraNode(
            transport, gop_size=2, segments_per_frame=4, parity=True
        )
        send_task = asyncio.create_task(
            node.stream_video(self._sequencer64(), self._scenes64())
        )
        results = await hub.attach(transport, expected_streams=1)
        await send_task
        await hub.close()
        return results[0]

    async def _guarded_run(self):
        node_end, hub_end = loopback_duplex_pair(max_buffered=64)
        hub = ReceiverHub(
            resilient=True,
            max_iterations=5,
            feedback=True,
            frame_deadline=30.0,
            nack_grace=30.0,
            resume_grace=30.0,
            idle_timeout=300.0,
        )

        async def connect():
            raise AssertionError("no fault was injected: reconnect must not fire")

        node = CameraNode(
            node_end,
            gop_size=2,
            segments_per_frame=4,
            parity=True,
            feedback=True,
            retransmit_capacity=64,
            reconnect=ReconnectSupervisor(connect),
        )
        send_task = asyncio.create_task(
            node.stream_video(self._sequencer64(), self._scenes64())
        )
        results = await hub.attach(hub_end, expected_streams=1)
        await send_task
        await hub.close()
        return hub, node, results[0]

    def test_armed_recovery_path_is_byte_identical_without_faults(self):
        async def scenario():
            baseline = await self._baseline_run()
            return baseline, await self._guarded_run()

        baseline, (hub, node, guarded) = run(scenario())
        stats = hub.stats()
        # Every recovery counter stayed at zero: the machinery never fired.
        assert stats.n_nacks_sent == 0
        assert stats.n_deadline_salvages == 0
        assert stats.n_resumes == 0
        assert stats.n_parked == 0
        assert node.n_retransmits == 0
        assert node.n_resumes == 0
        assert guarded.n_frames == baseline.n_frames == self.N_FRAMES
        for guarded_frame, baseline_frame in zip(
            guarded.frames, baseline.frames
        ):
            np.testing.assert_array_equal(
                guarded_frame.capture.samples, baseline_frame.capture.samples
            )
            assert guarded_frame.reconstruction is not None
            assert (
                guarded_frame.reconstruction.image.tobytes()
                == baseline_frame.reconstruction.image.tobytes()
            )
