"""Per-stream session state: decode chunks, walk GOP chains, stage solves.

This is the middle layer of the streaming stack.  The three layers are
deliberately separate so each can scale independently:

* :mod:`repro.stream.transport` is **wire-only**: it moves opaque byte
  slices and exerts backpressure, nothing else;
* this module owns everything *one stream* needs between the wire and the
  solver — the chunk finite-state machine, per-tile-position seed chains
  (:func:`~repro.stream.protocol.advance_seed_state`), the per-stream
  :class:`~repro.recon.incremental.IncrementalTiledReconstructor`, and the
  frame-barrier bookkeeping;
* :mod:`repro.stream.hub` owns the *many-streams* concerns — the accept
  loop, demultiplexing by the stream ids already on the wire, fair solve
  scheduling across streams, and the high-watermark backpressure.

A :class:`StreamSession` never touches a transport and never runs a solve
itself: it consumes already-parsed :class:`~repro.stream.protocol.Chunk`
objects and hands every CPU-bound reconstruction to a
:class:`SolveScheduler` — the seam where the hub's fairness policy plugs in.
The single-node :class:`~repro.stream.receiver.StreamReceiver` drives exactly
one session through exactly the same code path, which is what keeps
streamed ≡ in-process byte-identical whether one camera is connected or
hundreds are.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any, Protocol

import numpy as np

from repro.cs.operators import StepSizeCache
from repro.io.bitstream import unpack_samples
from repro.io.framing import (
    FrameHeader,
    FramingError,
    decode_frame,
    decode_frame_prefix,
)
from repro.recon.incremental import IncrementalTiledReconstructor
from repro.recon.pipeline import (
    ReconstructionResult,
    TiledReconstructionResult,
    reconstruct_frame,
)
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame
from repro.sensor.shard import (
    TiledCaptureResult,
    TileSlot,
    merge_tile_statistics,
    tile_grid,
)
from repro.stream.protocol import (
    CONTROL_CHUNK_TYPES,
    MAX_NACK_SEQUENCES,
    Chunk,
    ChunkType,
    ControlAck,
    FrameData,
    FrameParity,
    FrameSegment,
    NackRequest,
    RateAdvice,
    StreamHeader,
    StreamProtocolError,
    advance_seed_state,
    decode_frame_complete,
    decode_frame_data,
    decode_frame_parity,
    decode_frame_segment,
    decode_session_resume,
    decode_stream_end,
    decode_stream_header,
    encode_control_ack,
    encode_nack_request,
    encode_rate_advice,
    recover_missing_payload,
)
from repro.telemetry import (
    MONOTONIC_CLOCK,
    SPAN_DECODE,
    SPAN_QUEUE_WAIT,
    SPAN_SOLVE,
    SPAN_TRANSPORT,
    Clock,
    Telemetry,
    active,
)


class SolveScheduler(Protocol):
    """Structural type of the solve-dispatch seam between session and hub.

    ``submit`` takes the session's stream id (the fairness key) and a
    zero-argument callable of CPU-bound solver work, and returns a future
    resolving to the callable's result.  The call itself **may suspend** —
    that is the solve-side backpressure: a scheduler whose per-stream or
    global high-watermark is full parks the submitting session (and hence,
    through the transport, its camera node) without stalling any other
    stream's chunk processing.
    """

    async def submit(
        self, key: int, fn: Callable[[], Any]
    ) -> asyncio.Future[Any]:
        """Queue one unit of solver work for ``key``; await queue space."""
        ...  # pragma: no cover - protocol body


@dataclass(frozen=True)
class FrameLossReport:
    """Receiver-side delivery accounting for one frame of a lossy stream.

    One entry per landed frame in a resilient session's
    ``stats.frame_loss``; the same numbers ride the
    :class:`~repro.stream.protocol.ControlAck` back to the node when
    feedback is on.  ``n_recovered_chunks`` counts parity repairs — those
    chunks were lost on the wire (so they *do* appear in the session's
    ``n_lost_chunks``) but their samples reached the solve anyway.
    """

    frame_index: int
    n_expected_chunks: int
    n_received_chunks: int
    n_recovered_chunks: int
    n_samples_expected: int
    n_samples_received: int

    @property
    def clean(self) -> bool:
        """True when every expected sample of the frame was delivered.

        A report whose expectation is unknown (``n_samples_expected == 0``,
        e.g. a frame none of whose chunks arrived) is never clean.
        """
        return (
            self.n_samples_expected > 0
            and self.n_samples_received >= self.n_samples_expected
        )

    def to_ack(self) -> ControlAck:
        """The wire form of this report (what feedback sends to the node)."""
        return ControlAck(
            frame_index=self.frame_index,
            n_expected_chunks=self.n_expected_chunks,
            n_received_chunks=self.n_received_chunks,
            n_recovered_chunks=self.n_recovered_chunks,
            n_samples_expected=self.n_samples_expected,
            n_samples_received=self.n_samples_received,
        )


@dataclass
class ReceivedFrame:
    """One fully-landed frame: the decoded capture and (optionally) its image.

    Attributes
    ----------
    frame_index:
        Position in the stream.
    capture:
        The decoded payload — a :class:`CompressedFrame` for single-sensor
        streams, a reassembled :class:`TiledCaptureResult` for mosaics (its
        metadata is :func:`~repro.sensor.shard.merge_tile_statistics` over
        the decoded tiles, so the event statistics that crossed the wire
        aggregate exactly as the capture side aggregated them).
    reconstruction:
        The incremental reconstruction, or ``None`` when the receiver runs
        as a pure decoder — or when a resilient session dropped the solve
        because too few samples survived (see ``loss``).
    loss:
        Delivery accounting for this frame (resilient sessions only;
        ``None`` on the lossless path).
    sample_mask:
        The survival mask the solve used — ``None`` when every sample
        arrived (full-Φ solve) or for mosaics (whose loss is per tile).
    """

    frame_index: int
    capture: CompressedFrame | TiledCaptureResult
    reconstruction: ReconstructionResult | TiledReconstructionResult | None = None
    loss: FrameLossReport | None = None
    sample_mask: np.ndarray | None = None


@dataclass
class StreamResult:
    """Everything one stream delivered."""

    header: StreamHeader | None = None
    frames: list[ReceivedFrame] = field(default_factory=list)
    n_chunks: int = 0
    n_bytes: int = 0
    announced_frames: int | None = None
    stream_id: int | None = None

    @property
    def n_frames(self) -> int:
        """Frames fully received."""
        return len(self.frames)


@dataclass
class SessionStats:
    """Live per-stream counters a hub operator reads while the stream runs.

    ``frame_latencies`` records, per frame, the seconds from the frame's
    first chunk landing to the frame being fully decoded *and* (when
    reconstruction is on) solved — the quantity whose p99 the ``hub``
    benchmark group tracks.  Unlike :class:`StreamResult` (which is only
    returned for streams that finish cleanly), the stats object outlives a
    failed session, so a disconnect still leaves its partial counters
    readable.
    """

    stream_id: int
    n_chunks: int = 0
    n_bytes: int = 0
    n_frames: int = 0
    frame_latencies: list[float] = field(default_factory=list)
    # ---- loss accounting (only a resilient session moves these) ----
    #: Chunks the sequence numbers prove never arrived (parity-recovered
    #: chunks still count — they were lost on the wire).
    n_lost_chunks: int = 0
    #: Chunks that arrived after a later sequence number (and were used).
    n_reordered_chunks: int = 0
    #: Chunks whose sequence number had already been processed (skipped).
    n_duplicate_chunks: int = 0
    #: Chunks that arrived but failed payload decoding (checksum, framing).
    n_corrupt_chunks: int = 0
    #: Segment chunks rebuilt from XOR parity.
    n_recovered_chunks: int = 0
    #: Chunks arriving after the stream-end chunk (ignored).
    n_late_chunks: int = 0
    #: Frames solved from a strict subset of their samples (partial Φ).
    n_partial_frames: int = 0
    #: Frames landed without reconstruction (below the sample floor, or a
    #: broken GOP seed chain).
    n_dropped_frames: int = 0
    #: NACK requests queued down the feedback path (selective repeat).
    n_nacks_sent: int = 0
    #: Deferred frames that settled partial after their NACK grace lapsed
    #: (or the stream ended before the repair arrived).
    n_deadline_salvages: int = 0
    #: ``SESSION_RESUME`` chunks absorbed (node reconnect-with-resume).
    n_resumes: int = 0
    #: Per-frame delivery accounting, in finalisation order.
    frame_loss: list[FrameLossReport] = field(default_factory=list)


class _SegmentAssembly:
    """In-flight segment group of one frame (resilient single-sensor path)."""

    def __init__(self, frame_index: int) -> None:
        self.frame_index = frame_index
        self.n_segments: int | None = None
        self.keyframe = False
        self.segments: dict[int, FrameSegment] = {}
        self.payloads: dict[int, bytes] = {}
        self.parity: FrameParity | None = None
        #: Chunks of this frame that actually arrived off the wire.
        self.n_chunks_received = 0

    def add_segment(self, segment: FrameSegment, payload: bytes) -> bool:
        """Land one segment; returns False for an in-frame duplicate."""
        if self.n_segments is None:
            self.n_segments = segment.n_segments
            self.keyframe = segment.keyframe
        elif segment.n_segments != self.n_segments:
            raise StreamProtocolError(
                f"frame {self.frame_index} segments disagree on group size "
                f"({segment.n_segments} vs {self.n_segments})"
            )
        if segment.segment_index in self.segments:
            return False
        self.segments[segment.segment_index] = segment
        self.payloads[segment.segment_index] = payload
        self.n_chunks_received += 1
        return True

    def add_parity(self, parity: FrameParity) -> bool:
        """Land the frame's parity chunk; returns False for a duplicate."""
        if self.parity is not None:
            return False
        self.parity = parity
        self.n_chunks_received += 1
        return True

    def try_recover(self) -> FrameSegment | None:
        """Rebuild the single missing segment from parity, if possible."""
        if self.parity is None or self.n_segments is None:
            return None
        if len(self.segments) != self.n_segments - 1:
            return None
        (missing_index,) = set(range(self.n_segments)) - set(self.segments)
        try:
            payload = recover_missing_payload(
                self.parity, self.payloads, missing_index
            )
            segment = decode_frame_segment(payload)
        except StreamProtocolError:
            return None
        if segment.segment_index != missing_index:
            return None
        self.segments[missing_index] = segment
        self.payloads[missing_index] = payload
        return segment


class StreamSession:
    """The chunk finite-state machine for exactly one stream.

    Parameters
    ----------
    stream_id:
        The id this session answers to — the demux key the hub routes by.
    scheduler:
        The :class:`SolveScheduler` every reconstruction is dispatched
        through.  The session never blocks the event loop on solver work.
    reconstruct, dictionary, solver, regularization, sparsity,
    max_iterations, operator, eager, step_cache:
        Reconstruction options, exactly as on
        :class:`~repro.stream.receiver.StreamReceiver` (which forwards them
        here verbatim).
    resilient:
        Tolerate a lossy channel instead of treating every anomaly as a
        protocol violation: sequence gaps become tracked losses, duplicates
        and late chunks are skipped, corrupt payloads are counted, segment
        frames reconstruct from the surviving row subset of Φ, and mosaics
        may finalise with missing tiles.  Off by default — on a lossless
        channel the strict FSM is the stronger contract, and a zero-loss
        resilient session is byte-identical to it.
    min_surviving_samples:
        Sample floor for the partial-Φ solve: a frame that lands with fewer
        surviving samples keeps its decoded capture but gets no
        reconstruction (``n_dropped_frames``) — below some point a solve
        returns noise, and a receiver should say "lost" rather than lie.
    emit_feedback:
        Queue a :class:`~repro.stream.protocol.ControlAck` per finalised
        frame (plus a :class:`~repro.stream.protocol.RateAdvice` when the
        frame saw loss) for the hub to ship down the feedback path.
    max_sequence_gap:
        Resync-plausibility window: the largest forward sequence jump a
        resilient session books as loss rather than corruption.  ``None``
        keeps the :data:`MAX_SEQUENCE_GAP` default; burst-loss tests and
        operators expecting long outages can widen it.
    frame_deadline:
        Seconds (on the session clock) an incomplete segmented frame may
        wait for repair before settling.  Setting it turns on NACK-driven
        selective repeat: a frame that reaches its barrier (or outlives the
        deadline) with chunks still missing queues one ``CONTROL_NACK``
        down the feedback path and defers settlement for ``nack_grace``
        seconds; a retransmit completing the frame settles it whole, the
        grace lapsing settles it through the existing partial-Φ salvage
        (``n_deadline_salvages``).  ``None`` (default) keeps the immediate
        settle-at-barrier behaviour — with no faults the two are
        byte-identical.
    nack_grace:
        Grace window after a NACK before the deferred frame is salvaged;
        defaults to ``frame_deadline``.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  When present (and
        enabled) the session closes each frame's ``transport`` span as its
        chunks land, brackets chunk decoding in a ``decode`` span, and wraps
        every scheduled solve so the scheduler's ``queue_wait`` and the
        ``solve`` itself appear in the frame's trace.  Its clock also times
        the ``frame_latencies`` stats.  ``None`` (the default) records
        nothing and costs one identity check per seam.
    """

    #: How many whole-frame batched solves may be in flight at once before
    #: the frame barrier awaits the oldest.  One is enough to overlap the
    #: current frame's solve with the next frame's wire transfer while
    #: keeping per-session memory bounded.
    MAX_INFLIGHT_TILED_SOLVES = 1

    #: Default resync-plausibility window (see the ``max_sequence_gap``
    #: parameter): the largest forward sequence jump booked as loss rather
    #: than corruption — a jump past it is not plausible loss but a corrupt
    #: sequence field (or a different stream), and treating it as loss would
    #: fabricate millions of phantom missing chunks.
    MAX_SEQUENCE_GAP = 4096

    def __init__(
        self,
        stream_id: int,
        scheduler: SolveScheduler,
        *,
        reconstruct: bool = True,
        dictionary: str = "dct",
        solver: str = "fista",
        regularization: float | None = None,
        sparsity: int | None = None,
        max_iterations: int | None = None,
        operator: str = "structured",
        eager: bool = False,
        step_cache: StepSizeCache | None = None,
        resilient: bool = False,
        min_surviving_samples: int = 1,
        emit_feedback: bool = False,
        max_sequence_gap: int | None = None,
        frame_deadline: float | None = None,
        nack_grace: float | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.stream_id = int(stream_id)
        self.scheduler = scheduler
        self.reconstruct = bool(reconstruct)
        self.eager = bool(eager)
        self.resilient = bool(resilient)
        self.min_surviving_samples = max(1, int(min_surviving_samples))
        self.emit_feedback = bool(emit_feedback)
        self.max_sequence_gap = (
            self.MAX_SEQUENCE_GAP if max_sequence_gap is None else int(max_sequence_gap)
        )
        if self.max_sequence_gap < 1:
            raise ValueError(
                f"max_sequence_gap must be >= 1, got {self.max_sequence_gap}"
            )
        if frame_deadline is not None and frame_deadline <= 0:
            raise ValueError(f"frame_deadline must be > 0, got {frame_deadline}")
        if nack_grace is not None and nack_grace <= 0:
            raise ValueError(f"nack_grace must be > 0, got {nack_grace}")
        self.frame_deadline = frame_deadline
        self.nack_grace = nack_grace if nack_grace is not None else frame_deadline
        self.telemetry = telemetry
        self._clock: Clock = (
            telemetry.clock if telemetry is not None else MONOTONIC_CLOCK
        )
        self.stats = SessionStats(stream_id=self.stream_id)
        # The one option set shared by the single-frame solve path and the
        # tiled reconstructors — the two cannot diverge in configuration.
        self._recon_options: dict[str, Any] = dict(
            dictionary=dictionary,
            solver=solver,
            regularization=regularization,
            sparsity=sparsity,
            max_iterations=None if max_iterations is None else int(max_iterations),
            operator=operator,
            step_cache=step_cache,
        )
        self._header: StreamHeader | None = None
        self._slots: list[list[TileSlot]] | None = None
        self._result = StreamResult(stream_id=self.stream_id)
        self._next_sequence = 0
        self._ended = False
        # Per tile-position seed chains for seedless (GOP) frames.
        self._seed_chains: dict[tuple[int, int], np.ndarray] = {}
        # Per in-flight frame: grid of decoded tile frames, the frame's
        # reconstructor, the event-loop time its first chunk landed, and the
        # in-flight solve futures awaited at the frame barrier.
        self._pending_tiles: dict[int, list[list[CompressedFrame | None]]] = {}
        self._pending_recon: dict[int, IncrementalTiledReconstructor] = {}
        self._frame_started: dict[int, float] = {}
        self._pending_solves: dict[
            int,
            list[tuple[int, int, CompressedFrame, asyncio.Future[Any]]],
        ] = {}
        # Single-sensor streams: (ReceivedFrame, future) pairs whose
        # reconstructions are attached at end-of-stream (see :meth:`finish`).
        self._pending_frame_solves: list[
            tuple[ReceivedFrame, asyncio.Future[Any]]
        ] = []
        # Batched tiled mode: the (bounded) queue of in-flight whole-frame
        # solves — frame k's solve overlaps frame k+1's wire time, but the
        # barrier awaits older solves past the depth bound so a stream that
        # outruns the solver cannot accumulate unbounded work.
        self._pending_tiled_solves: list[
            tuple[ReceivedFrame, asyncio.Future[Any]]
        ] = []
        # ---- resilient-mode state ----
        self._finished = False
        #: Sequence numbers proven missing (gap seen, chunk never arrived).
        self._missing: set[int] = set()
        #: Next frame index the stream has not yet settled (landed, finalised
        #: partial, or written off as lost).  Frames are emitted in this
        #: order, so everything below it is history.
        self._next_frame_index = 0
        #: Chunks per frame, learned from the first frame barrier (segmented
        #: streams) or pinned to 1 (frame-data streams) — the expectation a
        #: fully-lost frame is reported against.
        self._expected_frame_chunks: int | None = None
        #: In-flight segment groups, by frame index (single-sensor only).
        self._assemblies: dict[int, _SegmentAssembly] = {}
        #: Frame index of the last frame that advanced each position's seed
        #: chain — a gap in this walk means the chain is stale and seedless
        #: frames must be dropped until the next keyframe re-anchors it.
        self._chain_frame: dict[tuple[int, int], int] = {}
        #: Encoded control chunks (type, payload) awaiting the feedback path.
        self._outgoing_control: list[tuple[ChunkType, bytes]] = []
        # ---- deadline supervision (only with frame_deadline set) ----
        #: Frames whose settlement is deferred awaiting NACK repair, mapped
        #: to the clock time their grace lapses.  In-order emission holds:
        #: :meth:`_drain_settled` never settles past the lowest deferral.
        self._deferred: dict[int, float] = {}
        #: Frames that already used their one NACK (a frame NACKs once).
        self._nacked_frames: set[int] = set()
        #: Highest frame index (exclusive) the barriers / stream end have
        #: asked the session to settle up to.
        self._settle_frontier = 0
        #: Clock time of the last chunk landed — what idle reaping reads.
        self.last_activity = self._clock.now()

    # -------------------------------------------------------------- helpers
    @property
    def ended(self) -> bool:
        """True once the stream-end chunk has been processed."""
        return self._ended

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has settled the session's result."""
        return self._finished

    @property
    def missing_sequences(self) -> tuple[int, ...]:
        """Sequence numbers of chunks proven lost, ascending.

        Parity-recovered chunks stay listed — they never arrived; recovery
        happened above the wire.  With a drop-only fault model and the
        node's one-chunk-per-send discipline, this equals the injected drop
        indices exactly (what the fault-injection suite pins).
        """
        return tuple(sorted(self._missing))

    def take_outgoing_control(self) -> list[tuple[ChunkType, bytes]]:
        """Drain queued feedback payloads (the hub ships them to the node)."""
        queued, self._outgoing_control = self._outgoing_control, []
        return queued

    def _record_loss(self, report: FrameLossReport) -> None:
        """Book a frame's delivery accounting and queue its feedback."""
        self.stats.frame_loss.append(report)
        if not self.emit_feedback:
            return
        self._outgoing_control.append(
            (ChunkType.CONTROL_ACK, encode_control_ack(report.to_ack()))
        )
        if report.n_samples_received < report.n_samples_expected:
            advice = RateAdvice(
                frame_index=report.frame_index,
                advised_samples=report.n_samples_received,
                loss_fraction=report.to_ack().loss_fraction,
            )
            self._outgoing_control.append(
                (ChunkType.CONTROL_RATE, encode_rate_advice(advice))
            )

    def _chain_ready(self, key: tuple[int, int], frame_index: int) -> bool:
        """True when the position's seed chain is valid for this frame.

        The chain is only trustworthy if *every* previous frame at this
        position advanced it; a fully-lost frame leaves a gap in the walk
        and everything after it (until the next keyframe) would silently
        decode against a stale seed — the one failure mode worse than a
        dropped frame.
        """
        assert self._header is not None
        if self._header.gop_size <= 1:
            return True
        return self._chain_frame.get(key) == frame_index - 1

    def _now(self) -> float:
        # The injected telemetry clock (REPRO006): deterministic under a
        # ManualClock, and shared with the node side over loopback so the
        # two halves of a frame trace subtract meaningfully.
        return self._clock.now()

    def _note_frame_landed(self, frame_index: int) -> None:
        """Record a frame's latency for the decode-only completion point."""
        started = self._frame_started.pop(frame_index, None)
        if started is not None:
            self.stats.frame_latencies.append(self._now() - started)

    def _note_on_solve_done(
        self, frame_index: int, future: asyncio.Future[Any]
    ) -> None:
        """Record a frame's latency when its (scheduled) solve resolves."""
        started = self._frame_started.pop(frame_index, None)
        if started is None:
            return
        clock = self._clock

        def note(done: asyncio.Future[Any]) -> None:
            if not done.cancelled():
                self.stats.frame_latencies.append(clock.now() - started)

        future.add_done_callback(note)

    async def _submit_solve(
        self, frame_index: int, fn: Callable[[], Any]
    ) -> asyncio.Future[Any]:
        """Dispatch one solve thunk, tracing its queue wait and solve time.

        With telemetry enabled the frame's ``queue_wait`` span opens at
        submission and closes inside the thunk the moment a scheduler slot
        actually runs it (on an executor thread — the tracer is
        thread-safe), where the ``solve`` span takes over.  The thunk's
        return value and exceptions pass through untouched, and the wrapped
        thunk only *reads* clocks — reconstruction bytes cannot change.
        """
        tel = active(self.telemetry)
        if tel is not None:
            stream_id = self.stream_id
            tel.begin_span(stream_id, frame_index, SPAN_QUEUE_WAIT)
            inner = fn

            def traced() -> Any:
                tel.end_span(stream_id, frame_index, SPAN_QUEUE_WAIT)
                tel.begin_span(stream_id, frame_index, SPAN_SOLVE)
                try:
                    return inner()
                finally:
                    tel.end_span(stream_id, frame_index, SPAN_SOLVE)

            fn = traced
        return await self.scheduler.submit(self.stream_id, fn)

    def _new_reconstructor(self) -> IncrementalTiledReconstructor:
        assert self._header is not None
        return IncrementalTiledReconstructor(
            self._header.scene_shape,
            self._header.tile_shape,
            **self._recon_options,
        )

    def _solve_frame(self, frame: CompressedFrame) -> ReconstructionResult:
        return reconstruct_frame(frame, **self._recon_options)

    def _solve_frame_masked(
        self, frame: CompressedFrame, sample_mask: np.ndarray
    ) -> ReconstructionResult:
        """Partial-Φ solve: invert only the rows whose samples survived."""
        return reconstruct_frame(frame, sample_mask=sample_mask, **self._recon_options)

    def _solve_tiled_batched(
        self,
        tiles: list[list[CompressedFrame | None]],
        capture_metadata: dict[str, object],
        partial: bool = False,
    ) -> TiledReconstructionResult:
        """Invert one tiled frame through the batched barrier solve.

        ``partial`` (resilient streams) skips missing tiles — they stay zero
        in the stitched scene — instead of requiring the full mosaic.
        """
        reconstructor = self._new_reconstructor()
        for grid_row, row in enumerate(tiles):
            for grid_col, frame in enumerate(row):
                if frame is not None:
                    reconstructor.stage_tile(grid_row, grid_col, frame)
        reconstructor.solve_staged()
        return reconstructor.result(capture_metadata=capture_metadata, partial=partial)

    # ----------------------------------------------- resilient-mode settling
    def _peek_header(
        self, prefix_bytes: bytes, key: tuple[int, int]
    ) -> FrameHeader | None:
        """Best-effort parse of a frame header whose seed chain is unusable.

        The fixed header precedes the seed on the wire, so decoding against a
        placeholder seed of the right width recovers the header fields (all
        a loss report needs) even when the real chain is stale or absent.
        """
        assert self._header is not None
        if self._slots is not None:
            slot = self._slots[key[0]][key[1]]
            rows, cols = slot.rows, slot.cols
        else:
            rows, cols = self._header.scene_shape
        placeholder = np.zeros(rows + cols, dtype=np.uint8)
        try:
            return decode_frame_prefix(prefix_bytes, seed_state=placeholder).header
        except FramingError:
            return None

    def _report_fully_lost(self, frame_index: int, n_expected_chunks: int) -> None:
        """Write off a frame none of whose chunks arrived (or none usable)."""
        self.stats.n_dropped_frames += 1
        self._frame_started.pop(frame_index, None)
        self._record_loss(
            FrameLossReport(
                frame_index=frame_index,
                n_expected_chunks=n_expected_chunks,
                n_received_chunks=0,
                n_recovered_chunks=0,
                n_samples_expected=0,
                n_samples_received=0,
            )
        )

    def _expected_chunks_for(self, assembly: _SegmentAssembly | None) -> int:
        """Best-known chunk count of one frame (barrier, else inference)."""
        if self._expected_frame_chunks is not None:
            return self._expected_frame_chunks
        if assembly is not None and assembly.n_segments is not None:
            return assembly.n_segments + (1 if assembly.parity is not None else 0)
        return 0

    async def _settle_one_frame(self, frame_index: int) -> None:
        """Finalise (or write off) one single-sensor frame the stream passed."""
        assembly = self._assemblies.pop(frame_index, None)
        expected = self._expected_chunks_for(assembly)
        if assembly is None:
            self._report_fully_lost(frame_index, expected)
        else:
            await self._finalize_assembly(assembly, expected)

    # ------------------------------------------------- deadline supervision
    def _assembly_repairable(self, frame_index: int) -> bool:
        """True when the frame is incomplete in a way a retransmit could fix.

        A frame with every segment present — or parity plus all-but-one,
        which :meth:`_SegmentAssembly.try_recover` rebuilds for free — needs
        no repair; one with nothing on the wire to ask for (an empty missing
        set) cannot name what to NACK.
        """
        if not self._missing:
            return False
        assembly = self._assemblies.get(frame_index)
        if assembly is None:
            return self._expected_chunks_for(None) > 0
        if assembly.n_segments is None:
            return True
        if len(assembly.segments) >= assembly.n_segments:
            return False
        if (
            assembly.parity is not None
            and len(assembly.segments) == assembly.n_segments - 1
        ):
            return False
        return True

    def _queue_nack(self, frame_index: int, now: float) -> None:
        """NACK the current missing set once on behalf of ``frame_index``."""
        sequences = tuple(sorted(self._missing)[:MAX_NACK_SEQUENCES])
        self._outgoing_control.append(
            (
                ChunkType.CONTROL_NACK,
                encode_nack_request(
                    NackRequest(frame_index=frame_index, sequences=sequences)
                ),
            )
        )
        self._nacked_frames.add(frame_index)
        self.stats.n_nacks_sent += 1
        assert self.nack_grace is not None
        self._deferred[frame_index] = now + self.nack_grace

    async def _drain_settled(self, *, defer: bool = True) -> None:
        """Settle frames in order up to the frontier, pausing at deferrals.

        The deadline path's replacement for the barrier's settle sweep:
        every frame below :attr:`_settle_frontier` settles oldest-first,
        except that a repairable frame (``defer=True``, deadline configured,
        not yet NACKed) is deferred instead — one ``CONTROL_NACK`` goes out
        and the sweep stops so frames keep emitting in order.  A retransmit
        completing the frame (or its grace lapsing) resumes the sweep via
        :meth:`_check_deferred`.
        """
        while self._next_frame_index < self._settle_frontier:
            frame_index = self._next_frame_index
            if frame_index in self._deferred:
                return
            if (
                defer
                and self.frame_deadline is not None
                and frame_index not in self._nacked_frames
                and self._assembly_repairable(frame_index)
            ):
                self._queue_nack(frame_index, self._now())
                return
            await self._settle_one_frame(frame_index)
            self._next_frame_index += 1

    async def _check_deferred(self, now: float) -> None:
        """Resolve deferred frames that completed or whose grace lapsed."""
        while self._deferred:
            frame_index = min(self._deferred)
            if not self._assembly_repairable(frame_index):
                # Repair landed (or parity now covers the hole): settle the
                # frame whole and keep sweeping.
                self._deferred.pop(frame_index)
            elif now >= self._deferred[frame_index]:
                # Grace over — fall back to the partial-Φ salvage.
                self._deferred.pop(frame_index)
                self.stats.n_deadline_salvages += 1
            else:
                return
            await self._drain_settled()

    async def check_deadlines(self, now: float | None = None) -> None:
        """Fire every expired frame/NACK timer (the hub's reap loop calls
        this; tests drive it directly under a ``ManualClock``).

        Two timers live here: an incomplete frame whose *first chunk* is
        older than ``frame_deadline`` NACKs once even though its barrier
        never arrived (the stalled-stream case the barrier trigger cannot
        see), and a deferred frame whose grace lapsed settles partial.
        """
        if self.frame_deadline is None or self._ended:
            return
        if now is None:
            now = self._now()
        for frame_index in sorted(self._frame_started):
            if (
                frame_index >= self._next_frame_index
                and frame_index not in self._nacked_frames
                and now - self._frame_started[frame_index] >= self.frame_deadline
                and self._assembly_repairable(frame_index)
            ):
                self._queue_nack(frame_index, now)
        await self._check_deferred(now)

    def _flush_deferrals(self) -> None:
        """Cancel every grace window (stream end / EOF): salvage now."""
        for frame_index in list(self._deferred):
            self._deferred.pop(frame_index)
            self.stats.n_deadline_salvages += 1

    async def _finalize_assembly(
        self, assembly: _SegmentAssembly, n_expected_chunks: int
    ) -> None:
        """Reassemble a segment group into a frame and stage its solve.

        Loss shows up as masked rows of Φ: every surviving segment fills its
        sample slice and marks it in the survival mask; a full mask takes the
        exact lossless solve path, a partial one the masked row-subset solve
        (when it clears ``min_surviving_samples``), and a frame whose prefix
        cannot be trusted — no segment at all, or a seedless frame behind a
        broken GOP chain — is written off rather than solved against a wrong
        or unknown Φ.
        """
        assert self._header is not None
        frame_index = assembly.frame_index
        key = (0, 0)
        recovered = assembly.try_recover()
        n_recovered = 1 if recovered is not None else 0
        self.stats.n_recovered_chunks += n_recovered

        def write_off(n_samples_expected: int) -> None:
            self.stats.n_dropped_frames += 1
            self._frame_started.pop(frame_index, None)
            self._record_loss(
                FrameLossReport(
                    frame_index=frame_index,
                    n_expected_chunks=n_expected_chunks,
                    n_received_chunks=assembly.n_chunks_received,
                    n_recovered_chunks=n_recovered,
                    n_samples_expected=n_samples_expected,
                    n_samples_received=0,
                )
            )

        segments = [assembly.segments[i] for i in sorted(assembly.segments)]
        if not segments:
            # Parity alone cannot rebuild anything.
            write_off(0)
            return
        first = segments[0]
        tel = active(self.telemetry)
        if tel is not None:
            tel.begin_span(self.stream_id, frame_index, SPAN_DECODE)
        try:
            if first.keyframe:
                prefix = decode_frame_prefix(first.prefix_bytes)
            elif self._chain_ready(key, frame_index):
                prefix = decode_frame_prefix(
                    first.prefix_bytes, seed_state=self._seed_chains[key]
                )
            else:
                # An earlier loss broke the seed chain; decoding against the
                # stale seed would hand the solver the wrong Φ.
                peeked = self._peek_header(first.prefix_bytes, key)
                write_off(0 if peeked is None else peeked.n_samples)
                return
        except FramingError:
            write_off(0)
            return
        header = prefix.header
        if (header.rows, header.cols) != self._header.scene_shape:
            write_off(header.n_samples)
            return
        samples = np.zeros(header.n_samples, dtype=np.int64)
        mask = np.zeros(header.n_samples, dtype=bool)
        n_bytes = len(first.prefix_bytes)
        for segment in segments:
            stop = segment.start_sample + segment.n_samples
            if stop > header.n_samples:
                self.stats.n_corrupt_chunks += 1
                continue
            try:
                values = unpack_samples(
                    segment.sample_bytes, segment.n_samples, header.sample_bits
                )
            except ValueError:
                self.stats.n_corrupt_chunks += 1
                continue
            samples[segment.start_sample : stop] = values
            mask[segment.start_sample : stop] = True
            n_bytes += len(segment.sample_bytes)
        if tel is not None:
            tel.end_span(self.stream_id, frame_index, SPAN_DECODE)
        if self._header.gop_size > 1:
            self._seed_chains[key] = advance_seed_state(
                prefix.seed_state,
                header.rule_number,
                n_samples=header.n_samples,
                steps_per_sample=header.steps_per_sample,
                warmup_steps=header.warmup_steps,
            )
            self._chain_frame[key] = frame_index
        metadata = dict(prefix.metadata)
        metadata["decoded_from_bytes"] = n_bytes
        frame = CompressedFrame(
            samples=samples,
            seed_state=prefix.seed_state,
            rule_number=header.rule_number,
            steps_per_sample=header.steps_per_sample,
            warmup_steps=header.warmup_steps,
            config=SensorConfig(
                rows=header.rows, cols=header.cols, pixel_bits=header.pixel_bits
            ),
            digital_image=None,
            metadata=metadata,
        )
        n_received_samples = int(mask.sum())
        complete = bool(mask.all())
        report = FrameLossReport(
            frame_index=frame_index,
            n_expected_chunks=n_expected_chunks,
            n_received_chunks=assembly.n_chunks_received,
            n_recovered_chunks=n_recovered,
            n_samples_expected=header.n_samples,
            n_samples_received=n_received_samples,
        )
        received = ReceivedFrame(
            frame_index=frame_index,
            capture=frame,
            loss=report,
            sample_mask=None if complete else mask,
        )
        self._result.frames.append(received)
        self.stats.n_frames += 1
        self._record_loss(report)
        if self.reconstruct and complete:
            future = await self._submit_solve(
                frame_index, _bind(self._solve_frame, frame)
            )
        elif self.reconstruct and n_received_samples >= self.min_surviving_samples:
            self.stats.n_partial_frames += 1
            future = await self._submit_solve(
                frame_index, _bind(self._solve_frame_masked, frame, mask)
            )
        else:
            if self.reconstruct:
                self.stats.n_dropped_frames += 1
            future = None
        if future is None:
            self._note_frame_landed(frame_index)
        else:
            self._note_on_solve_done(frame_index, future)
            self._pending_frame_solves.append((received, future))

    async def _settle_tiled_before(self, stop_index: int) -> None:
        """Settle every tiled frame below ``stop_index`` (lost barriers)."""
        assert self._slots is not None
        grid_size = len(self._slots) * len(self._slots[0])
        for frame_index in range(self._next_frame_index, stop_index):
            tiles = self._pending_tiles.pop(frame_index, None)
            if tiles is None:
                self._report_fully_lost(frame_index, grid_size)
            else:
                await self._emit_tiled_frame(
                    frame_index, tiles, n_expected_chunks=grid_size
                )
        self._next_frame_index = max(self._next_frame_index, stop_index)

    async def _emit_tiled_frame(
        self,
        frame_index: int,
        tiles: list[list[CompressedFrame | None]],
        *,
        n_expected_chunks: int,
    ) -> None:
        """Land one tiled frame — complete, or (resilient) missing tiles."""
        assert self._header is not None and self._slots is not None
        flat = [frame for row in tiles for frame in row]
        present = [frame for frame in flat if frame is not None]
        n_missing = len(flat) - len(present)
        capture = TiledCaptureResult(
            tiles=tiles,
            slots=self._slots,
            scene_shape=self._header.scene_shape,
            tile_shape=self._header.tile_shape,
            metadata=merge_tile_statistics(present),
        )
        report = None
        if self.resilient:
            # Every tile of a stream samples at the same rate, so a missing
            # tile's expectation is any survivor's count.
            per_tile = present[0].n_samples if present else 0
            n_received_samples = sum(frame.n_samples for frame in present)
            report = FrameLossReport(
                frame_index=frame_index,
                n_expected_chunks=n_expected_chunks,
                n_received_chunks=len(present),
                n_recovered_chunks=0,
                n_samples_expected=n_received_samples + n_missing * per_tile,
                n_samples_received=n_received_samples,
            )
            if n_missing:
                self.stats.n_partial_frames += 1
        reconstruction = None
        if self.reconstruct and self.eager:
            reconstructor = self._pending_recon.pop(frame_index)
            solves = self._pending_solves.pop(frame_index, [])
            try:
                for grid_row, grid_col, frame, future in solves:
                    reconstructor.insert_result(
                        grid_row, grid_col, frame, await future
                    )
            except BaseException:
                # One tile's solve failed: don't let its siblings keep
                # running unobserved (they left _pending_solves above).
                for _, _, _, future in solves:
                    future.cancel()
                raise
            reconstruction = reconstructor.result(
                capture_metadata=capture.metadata, partial=bool(n_missing)
            )
        received = ReceivedFrame(
            frame_index=frame_index,
            capture=capture,
            reconstruction=reconstruction,
            loss=report,
        )
        self._result.frames.append(received)
        self.stats.n_frames += 1
        if report is not None:
            self._record_loss(report)
        if self.reconstruct and not self.eager:
            # Batched mode: every landed tile of the frame is here — queue
            # the stacked multi-tile solve (the same stage/solve_staged path
            # in-process reconstruct_tiled defaults to, so the streamed
            # result is byte-identical to it) while the stream keeps
            # draining the next frame's chunks.  Older in-flight solves are
            # awaited here past the depth bound, so a stream faster than the
            # solver back-pressures instead of accumulating frames without
            # limit.
            while len(self._pending_tiled_solves) >= self.MAX_INFLIGHT_TILED_SOLVES:
                earlier, future = self._pending_tiled_solves.pop(0)
                earlier.reconstruction = await future
            future = await self._submit_solve(
                frame_index,
                _bind(
                    self._solve_tiled_batched,
                    tiles,
                    capture.metadata,
                    bool(n_missing),
                ),
            )
            self._note_on_solve_done(frame_index, future)
            self._pending_tiled_solves.append((received, future))
        else:
            self._note_frame_landed(frame_index)

    # ------------------------------------------------------------- chunk fsm
    async def handle_chunk(self, chunk: Chunk) -> None:
        """Advance the FSM by one chunk (may suspend on solve backpressure).

        On the strict (default) path, raises :class:`StreamProtocolError` on
        malformed chunks, sequence gaps, duplicate tiles, or chunks after
        the stream end.  A resilient session turns those anomalies into
        accounting instead: gaps become tracked losses, duplicates and
        post-end chunks are skipped, reordered chunks are used, and corrupt
        payloads — including an implausible sequence jump past
        :data:`MAX_SEQUENCE_GAP`, the signature of a resync decoder latching
        onto a false magic byte — are counted and skipped; only a missing
        stream header still raises.
        """
        self.last_activity = self._now()
        if not self._advance_sequence(chunk):
            return
        self._result.n_chunks += 1
        self._result.n_bytes += chunk.n_bytes
        self.stats.n_chunks += 1
        self.stats.n_bytes += chunk.n_bytes
        try:
            await self._dispatch_chunk(chunk)
        except StreamProtocolError:
            if not self.resilient:
                raise
            # A chunk that arrived but cannot be used (failed checksum, a
            # truncated payload that swallowed its neighbour, an impossible
            # field) — its data is as lost as a dropped chunk's, but the
            # stream itself keeps flowing.
            self.stats.n_corrupt_chunks += 1
        if self._deferred:
            # A retransmit may have just completed the deferred head frame
            # (settle it whole) or time may have run out on its grace.
            await self._check_deferred(self._now())

    def _advance_sequence(self, chunk: Chunk) -> bool:
        """Run the sequence FSM; returns False when the chunk is skipped."""
        if self._ended:
            if self.resilient:
                self.stats.n_late_chunks += 1
                return False
            raise StreamProtocolError(
                f"{chunk.chunk_type.name} chunk after the stream end"
            )
        if chunk.sequence == self._next_sequence:
            self._next_sequence += 1
            return True
        if not self.resilient:
            raise StreamProtocolError(
                f"chunk sequence jumped to {chunk.sequence}, "
                f"expected {self._next_sequence}"
            )
        if chunk.sequence > self._next_sequence:
            gap = chunk.sequence - self._next_sequence
            if gap > self.max_sequence_gap:
                # Not plausible loss but a corrupt sequence field (typically
                # a resync decoder latching onto a false magic byte inside a
                # truncated chunk's spilled payload).  Treating it as loss
                # would fabricate millions of phantom missing chunks, and
                # raising would kill the very salvage resilient mode exists
                # for — so the chunk itself is the casualty: counted corrupt,
                # skipped, and the sequence FSM holds its position.
                self.stats.n_corrupt_chunks += 1
                return False
            # Everything between is now provably lost *unless* it arrives
            # late, in which case the FSM below reclaims it.
            self._missing.update(range(self._next_sequence, chunk.sequence))
            self.stats.n_lost_chunks = len(self._missing)
            self._next_sequence = chunk.sequence + 1
            return True
        if chunk.sequence in self._missing:
            self._missing.discard(chunk.sequence)
            self.stats.n_lost_chunks = len(self._missing)
            self.stats.n_reordered_chunks += 1
            return True
        self.stats.n_duplicate_chunks += 1
        return False

    async def _dispatch_chunk(self, chunk: Chunk) -> None:
        if chunk.chunk_type == ChunkType.STREAM_START:
            if self._header is not None:
                raise StreamProtocolError("duplicate stream-start chunk")
            self._header = decode_stream_header(chunk.payload)
            self._result.header = self._header
            if self._header.tiled:
                self._slots = tile_grid(
                    self._header.scene_shape, self._header.tile_shape
                )
            return
        if self._header is None:
            raise StreamProtocolError(
                f"{chunk.chunk_type.name} chunk before the stream start"
            )
        if chunk.chunk_type == ChunkType.FRAME_DATA:
            await self._handle_frame_data(chunk)
        elif chunk.chunk_type == ChunkType.FRAME_SEGMENT:
            self._handle_frame_segment(chunk)
        elif chunk.chunk_type == ChunkType.FRAME_PARITY:
            self._handle_frame_parity(chunk)
        elif chunk.chunk_type == ChunkType.FRAME_COMPLETE:
            await self._handle_frame_complete(chunk)
        elif chunk.chunk_type == ChunkType.STREAM_END:
            announced = decode_stream_end(chunk.payload)
            if self.resilient and self._header is not None:
                # Frames whose barrier (or every chunk) was lost are still
                # outstanding — settle them before sealing the stream.  Any
                # open NACK grace window dies with the stream: the repair
                # can no longer arrive, so deferred frames salvage partial.
                if self._header.tiled:
                    await self._settle_tiled_before(announced)
                else:
                    self._flush_deferrals()
                    self._settle_frontier = max(self._settle_frontier, announced)
                    await self._drain_settled(defer=False)
            self._result.announced_frames = announced
            self._ended = True
        elif chunk.chunk_type == ChunkType.SESSION_RESUME:
            if not self.resilient:
                raise StreamProtocolError(
                    "session-resume chunk on a strict session (resume needs "
                    "a resilient receiver)"
                )
            # The resume rides the node's normal forward sequence, so the
            # gap FSM above has already booked everything the cut swallowed
            # as missing — the replay that follows reclaims it.  The chunk
            # itself is pure bookkeeping here; admission (grace window,
            # parked state) is the hub's job before the session ever sees it.
            decode_session_resume(chunk.payload)
            self.stats.n_resumes += 1
        elif chunk.chunk_type in CONTROL_CHUNK_TYPES:
            raise StreamProtocolError(
                f"{chunk.chunk_type.name} control chunk on the forward data "
                "path (control flows receiver → node only)"
            )

    def _decode_with_chain(
        self, data: FrameData, key: tuple[int, int], keyframe: bool
    ) -> CompressedFrame:
        """Decode one embedded frame, maintaining the position's seed chain."""
        assert self._header is not None
        if keyframe:
            frame = decode_frame(data.frame_bytes)
        else:
            chain = self._seed_chains.get(key)
            if chain is None:
                raise StreamProtocolError(
                    f"seedless frame for tile {key} arrived before any keyframe"
                )
            frame = decode_frame(data.frame_bytes, seed_state=chain)
        # The one-pattern frame overlap: this frame's last selection pattern
        # seeds the next frame at this position.  Keyframe-only streams
        # (gop_size <= 1) never read the chain, so skip the CA evolution on
        # their decode hot path.
        if self._header.gop_size > 1:
            self._seed_chains[key] = advance_seed_state(
                frame.seed_state,
                frame.rule_number,
                n_samples=frame.n_samples,
                steps_per_sample=frame.steps_per_sample,
                warmup_steps=frame.warmup_steps,
            )
            self._chain_frame[key] = data.frame_index
        return frame

    async def _handle_frame_data(self, chunk: Chunk) -> None:
        assert self._header is not None
        data = decode_frame_data(chunk.payload)
        key = (data.grid_row, data.grid_col)
        tel = active(self.telemetry)
        if tel is not None:
            # Close the frame's transport span: its node-side half began
            # right before the first send.  Over TCP this process never saw
            # that begin, so the end is a documented no-op.
            tel.end_span(self.stream_id, data.frame_index, SPAN_TRANSPORT)
        if self.resilient and not self._header.tiled:
            if data.frame_index < self._next_frame_index:
                self.stats.n_late_chunks += 1
                return
            if self._expected_frame_chunks is None:
                self._expected_frame_chunks = 1
            # Frames the stream skipped entirely (their one chunk dropped).
            while self._next_frame_index < data.frame_index:
                await self._settle_one_frame(self._next_frame_index)
                self._next_frame_index += 1
            self._next_frame_index = data.frame_index + 1
        if (
            self.resilient
            and not data.keyframe
            and not self._chain_ready(key, data.frame_index)
        ):
            # The chunk arrived intact but an earlier loss broke this
            # position's seed chain: decoding would silently rebuild the
            # wrong Φ.  Drop it; the next keyframe re-anchors the chain.
            if self._header.tiled:
                return  # the frame barrier accounts for the missing tile
            peeked = self._peek_header(data.frame_bytes, key)
            self.stats.n_dropped_frames += 1
            self._record_loss(
                FrameLossReport(
                    frame_index=data.frame_index,
                    n_expected_chunks=1,
                    n_received_chunks=1,
                    n_recovered_chunks=0,
                    n_samples_expected=0 if peeked is None else peeked.n_samples,
                    n_samples_received=0,
                )
            )
            return
        if tel is not None:
            tel.begin_span(self.stream_id, data.frame_index, SPAN_DECODE)
        frame = self._decode_with_chain(data, key, data.keyframe)
        if tel is not None:
            tel.end_span(self.stream_id, data.frame_index, SPAN_DECODE)
        self._frame_started.setdefault(data.frame_index, self._now())
        if not self._header.tiled:
            if key != (0, 0):
                raise StreamProtocolError(
                    f"tile position {key} in a single-sensor stream"
                )
            expected = self._header.scene_shape
            if (frame.config.rows, frame.config.cols) != expected:
                raise StreamProtocolError(
                    f"frame {data.frame_index} geometry "
                    f"{(frame.config.rows, frame.config.cols)} does not match "
                    f"the announced scene {expected}"
                )
            received = ReceivedFrame(frame_index=data.frame_index, capture=frame)
            if self.resilient:
                received.loss = FrameLossReport(
                    frame_index=data.frame_index,
                    n_expected_chunks=1,
                    n_received_chunks=1,
                    n_recovered_chunks=0,
                    n_samples_expected=frame.n_samples,
                    n_samples_received=frame.n_samples,
                )
                self._record_loss(received.loss)
            self._result.frames.append(received)
            self.stats.n_frames += 1
            if self.reconstruct:
                # Queue the solve but keep draining the stream; the result
                # is attached at end-of-stream (see :meth:`finish`).
                future = await self._submit_solve(
                    data.frame_index, _bind(self._solve_frame, frame)
                )
                self._note_on_solve_done(data.frame_index, future)
                self._pending_frame_solves.append((received, future))
            else:
                self._note_frame_landed(data.frame_index)
            return
        # Tiled: land the tile in its in-flight frame (solved per-tile right
        # away in eager mode, or collected for the barrier's batched solve).
        assert self._slots is not None
        grid_rows, grid_cols = len(self._slots), len(self._slots[0])
        if not (data.grid_row < grid_rows and data.grid_col < grid_cols):
            raise StreamProtocolError(
                f"tile position {key} outside the {grid_rows}x{grid_cols} grid"
            )
        slot = self._slots[data.grid_row][data.grid_col]
        if (frame.config.rows, frame.config.cols) != (slot.rows, slot.cols):
            raise StreamProtocolError(
                f"tile {key} of frame {data.frame_index} is "
                f"{frame.config.rows}x{frame.config.cols}, its slot expects "
                f"{slot.rows}x{slot.cols}"
            )
        tiles = self._pending_tiles.setdefault(
            data.frame_index,
            [[None] * grid_cols for _ in range(grid_rows)],
        )
        if tiles[data.grid_row][data.grid_col] is not None:
            raise StreamProtocolError(
                f"duplicate tile {key} in frame {data.frame_index}"
            )
        tiles[data.grid_row][data.grid_col] = frame
        if self.reconstruct and self.eager:
            reconstructor = self._pending_recon.get(data.frame_index)
            if reconstructor is None:
                reconstructor = self._new_reconstructor()
                self._pending_recon[data.frame_index] = reconstructor
            # Eager mode: queue the solve but keep draining the stream —
            # with several scheduler slots, tiles reconstruct concurrently
            # while later chunks are still arriving.  The futures are
            # awaited (and stitched, in arrival order) at the frame barrier.
            # In the default batched mode the tiles just accumulate here and
            # the barrier inverts them all in one stacked solve.
            future = await self._submit_solve(
                data.frame_index, _bind(reconstructor.solve_tile, frame)
            )
            self._pending_solves.setdefault(data.frame_index, []).append(
                (data.grid_row, data.grid_col, frame, future)
            )

    def _handle_frame_segment(self, chunk: Chunk) -> None:
        assert self._header is not None
        if not self.resilient:
            raise StreamProtocolError(
                "frame-segment chunk on a strict session (segmented streams "
                "need a resilient receiver)"
            )
        if self._header.tiled:
            raise StreamProtocolError("frame-segment chunk in a tiled stream")
        segment = decode_frame_segment(chunk.payload)
        if (segment.grid_row, segment.grid_col) != (0, 0):
            raise StreamProtocolError(
                f"tile position {(segment.grid_row, segment.grid_col)} on a "
                "frame segment of a single-sensor stream"
            )
        if segment.frame_index < self._next_frame_index:
            self.stats.n_late_chunks += 1
            return
        tel = active(self.telemetry)
        if tel is not None:
            tel.end_span(self.stream_id, segment.frame_index, SPAN_TRANSPORT)
        assembly = self._assemblies.setdefault(
            segment.frame_index, _SegmentAssembly(segment.frame_index)
        )
        if not assembly.add_segment(segment, chunk.payload):
            self.stats.n_duplicate_chunks += 1
            return
        self._frame_started.setdefault(segment.frame_index, self._now())

    def _handle_frame_parity(self, chunk: Chunk) -> None:
        assert self._header is not None
        if not self.resilient:
            raise StreamProtocolError(
                "frame-parity chunk on a strict session (segmented streams "
                "need a resilient receiver)"
            )
        if self._header.tiled:
            raise StreamProtocolError("frame-parity chunk in a tiled stream")
        parity = decode_frame_parity(chunk.payload)
        if (parity.grid_row, parity.grid_col) != (0, 0):
            raise StreamProtocolError(
                f"tile position {(parity.grid_row, parity.grid_col)} on a "
                "frame parity chunk of a single-sensor stream"
            )
        if parity.frame_index < self._next_frame_index:
            self.stats.n_late_chunks += 1
            return
        tel = active(self.telemetry)
        if tel is not None:
            tel.end_span(self.stream_id, parity.frame_index, SPAN_TRANSPORT)
        assembly = self._assemblies.setdefault(
            parity.frame_index, _SegmentAssembly(parity.frame_index)
        )
        if not assembly.add_parity(parity):
            self.stats.n_duplicate_chunks += 1
            return
        self._frame_started.setdefault(parity.frame_index, self._now())

    async def _handle_frame_complete(self, chunk: Chunk) -> None:
        assert self._header is not None
        frame_index, n_tiles = decode_frame_complete(chunk.payload)
        if not self._header.tiled:
            if not self.resilient:
                raise StreamProtocolError(
                    "frame-complete barrier in a single-sensor stream"
                )
            # Segmented single-sensor stream: the barrier both finalises its
            # own frame (with the authoritative chunk count) and settles
            # every earlier frame whose own barrier was lost.
            if frame_index < self._next_frame_index:
                self.stats.n_late_chunks += 1
                return
            self._expected_frame_chunks = n_tiles
            self._settle_frontier = max(self._settle_frontier, frame_index + 1)
            await self._drain_settled()
            return
        tiles = self._pending_tiles.pop(frame_index, None)
        if tiles is None:
            if not self.resilient:
                raise StreamProtocolError(
                    f"frame-complete for unknown frame {frame_index}"
                )
            if frame_index < self._next_frame_index:
                self.stats.n_late_chunks += 1
                return
            # A barrier whose every data tile was lost.
            await self._settle_tiled_before(frame_index)
            self._report_fully_lost(frame_index, n_tiles)
            self._next_frame_index = frame_index + 1
            return
        flat = [frame for row in tiles for frame in row]
        if any(frame is None for frame in flat) and not self.resilient:
            missing = sum(frame is None for frame in flat)
            raise StreamProtocolError(
                f"frame {frame_index} completed with {missing} tiles missing"
            )
        if n_tiles != len(flat):
            # Corrupt barrier; keep the frame's tiles pending so a resilient
            # stream can still settle them at end-of-stream.
            self._pending_tiles[frame_index] = tiles
            raise StreamProtocolError(
                f"frame {frame_index} barrier announces {n_tiles} tiles, "
                f"grid has {len(flat)}"
            )
        if self.resilient:
            await self._settle_tiled_before(frame_index)
            self._next_frame_index = frame_index + 1
        await self._emit_tiled_frame(
            frame_index, tiles, n_expected_chunks=n_tiles
        )

    # --------------------------------------------------------------- closing
    async def handle_eof(self) -> None:
        """Seal a resilient stream whose transport died before stream-end.

        The strict FSM treats EOF-before-end as a protocol failure (the hub
        raises and tears the session down); a resilient session salvages
        instead: every outstanding segment group and tiled frame finalises
        from whatever arrived, and the session ends with
        ``announced_frames`` unknown (``None``).
        """
        if not self.resilient:
            raise StreamProtocolError(
                "transport closed before the stream-end chunk arrived"
            )
        if self._ended:
            return
        self._flush_deferrals()
        if self._header is not None:
            for frame_index in sorted(self._assemblies):
                await self._settle_one_frame(frame_index)
                self._next_frame_index = max(
                    self._next_frame_index, frame_index + 1
                )
            if self._slots is not None and self._pending_tiles:
                await self._settle_tiled_before(max(self._pending_tiles) + 1)
        self._ended = True

    async def finish(self) -> StreamResult:
        """Settle all in-flight work and return the stream's result.

        Called once :attr:`ended` is true.  Raises
        :class:`StreamProtocolError` for streams that ended with incomplete
        tiled frames.
        """
        if not self._ended:
            raise StreamProtocolError(
                "transport closed before the stream-end chunk arrived"
            )
        if self._pending_tiles:
            pending = sorted(self._pending_tiles)
            raise StreamProtocolError(
                f"stream ended with incomplete tiled frames: {pending}"
            )
        for received, future in self._pending_frame_solves:
            received.reconstruction = await future
        self._pending_frame_solves = []
        for received, future in self._pending_tiled_solves:
            received.reconstruction = await future
        self._pending_tiled_solves = []
        self._finished = True
        return self._result

    def cancel(self) -> None:
        """Cancel every in-flight solve (the session is being torn down)."""
        for solves in self._pending_solves.values():
            for _, _, _, future in solves:
                future.cancel()
        for _, future in self._pending_frame_solves:
            future.cancel()
        for _, future in self._pending_tiled_solves:
            future.cancel()
        # Consume exceptions of already-settled futures so a torn-down
        # session never leaves "exception was never retrieved" noise.
        for solves in self._pending_solves.values():
            for _, _, _, future in solves:
                _consume_exception(future)
        for _, future in self._pending_frame_solves:
            _consume_exception(future)
        for _, future in self._pending_tiled_solves:
            _consume_exception(future)


def _bind(fn: Callable[..., Any], *args: Any) -> Callable[[], Any]:
    """A zero-argument thunk of ``fn(*args)`` for :meth:`SolveScheduler.submit`."""

    def call() -> Any:
        return fn(*args)

    return call


def _consume_exception(future: asyncio.Future[Any]) -> None:
    if future.done() and not future.cancelled():
        future.exception()
