"""Unified telemetry: metrics registry, frame-lifecycle traces, profiles.

Dependency-free (pure stdlib — no numpy) so it can be imported, scraped and
tested anywhere the library runs.  Three pieces behind one
:class:`Telemetry` facade:

* :mod:`~repro.telemetry.registry` — counters / gauges / fixed-bucket
  histograms with Prometheus-text and JSON renderers;
* :mod:`~repro.telemetry.trace` — per-frame spans across
  capture → encode → transport → decode → queue-wait → solve;
* :mod:`~repro.telemetry.profile` — opt-in per-iteration solver profiles.

The package contract, pinned by tests and benchmarks: **zero-cost when
disabled** (``telemetry=None`` everywhere by default) and **bit-neutral
when enabled** (instrumentation records times and counts only — it never
touches data or RNG, so every reconstructed byte is identical either way).
"""

from repro.telemetry.clock import MONOTONIC_CLOCK, Clock, ManualClock, MonotonicClock
from repro.telemetry.core import STAGE_SECONDS, Telemetry, active
from repro.telemetry.profile import SolverProfile
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    MetricsSnapshot,
    parse_prometheus,
)
from repro.telemetry.scrape import serve_metrics
from repro.telemetry.stats import SUMMARY_QUANTILES, percentile, quantile_summary
from repro.telemetry.trace import (
    SPAN_CAPTURE,
    SPAN_DECODE,
    SPAN_ENCODE,
    SPAN_QUEUE_WAIT,
    SPAN_SOLVE,
    SPAN_TRANSPORT,
    STAGES,
    FrameTrace,
    FrameTracer,
    Span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MONOTONIC_CLOCK",
    "SPAN_CAPTURE",
    "SPAN_DECODE",
    "SPAN_ENCODE",
    "SPAN_QUEUE_WAIT",
    "SPAN_SOLVE",
    "SPAN_TRANSPORT",
    "STAGES",
    "STAGE_SECONDS",
    "SUMMARY_QUANTILES",
    "Clock",
    "Counter",
    "FrameTrace",
    "FrameTracer",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MonotonicClock",
    "SolverProfile",
    "Span",
    "Telemetry",
    "active",
    "parse_prometheus",
    "percentile",
    "quantile_summary",
    "serve_metrics",
]
