"""E17 — self-healing under chaos: recovery latency and goodput.

The ``chaos`` group pins the *self-healing* claims of the session-durability
layer on the same 64x64 video material as the loss suite:

* ``test_chaos_burst_loss_goodput`` — goodput (delivered / expected samples)
  of a streamed video through a seeded Gilbert–Elliott burst channel at its
  default ~10 % stationary loss, with the full selective-repeat loop armed
  (reassembly deadlines → NACK → retransmission buffer).  Asserts the repair
  strictly beats the PR-8 resilient baseline on the identical channel seed,
  and times the healed run for the regression gate;
* ``test_chaos_reconnect_recovery_latency`` — wall-clock of a stream whose
  node is killed mid-GOP and comes back through the reconnect supervisor
  (resume + verbatim replay of the unacked window).  Every frame must land
  clean; the median run time tracks the end-to-end recovery latency.
"""

import asyncio

import pytest

from benchmarks.conftest import print_table
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.fault import DisconnectingTransport, GilbertElliottTransport
from repro.stream.hub import ReceiverHub
from repro.stream.node import CameraNode, ReconnectSupervisor
from repro.stream.transport import loopback_duplex_pair

N_FRAMES = 2
N_SAMPLES = 512
GE_SEED = 21


def _sequencer():
    return VideoSequencer(
        CompressiveImager(SensorConfig(), seed=2018),
        samples_per_frame=N_SAMPLES,
        seed=2018,
    )


def _scenes():
    return [
        make_scene("natural", (64, 64), seed=index) for index in range(N_FRAMES)
    ]


def _delivered(hub):
    reports = hub.session_stats[1].frame_loss
    return sum(report.n_samples_received for report in reports), sum(
        report.n_samples_expected for report in reports
    )


def _stream_burst_once(*, nack):
    """One streamed video through the seeded burst channel.

    ``nack=False`` is the PR-8 resilient baseline (closed feedback loop, no
    selective repeat); ``nack=True`` arms the reassembly deadline and the
    retransmission buffer on the identical channel seed.
    """

    async def scenario():
        node_end, hub_end = loopback_duplex_pair(max_buffered=4)
        channel = GilbertElliottTransport(node_end, seed=GE_SEED)
        hub = ReceiverHub(
            resilient=True,
            reconstruct=False,
            feedback=True,
            frame_deadline=30.0 if nack else None,
        )
        node = CameraNode(
            channel,
            gop_size=2,
            segments_per_frame=8,
            parity=True,
            feedback=True,
            retransmit_capacity=256 if nack else 0,
        )
        send_task = asyncio.create_task(
            node.stream_video(_sequencer(), _scenes(), keep_digital_image=False)
        )
        try:
            results = await hub.attach(hub_end, expected_streams=1)
        finally:
            await hub.close()
        await send_task
        return channel, hub, node, results[0]

    return asyncio.run(scenario())


def _stream_kill_and_resume_once():
    """A stream killed mid-GOP that heals through reconnect-with-resume."""

    async def scenario():
        hub = ReceiverHub(resilient=True, reconstruct=False, resume_grace=60.0)
        node_end, hub_end = loopback_duplex_pair(max_buffered=64)
        cutter = DisconnectingTransport(node_end, disconnect_after=13)
        attach_tasks = [asyncio.create_task(hub.attach(hub_end))]

        async def connect():
            await attach_tasks[0]
            new_node_end, new_hub_end = loopback_duplex_pair(max_buffered=64)
            attach_tasks.append(asyncio.create_task(hub.attach(new_hub_end)))
            return new_node_end

        node = CameraNode(
            cutter,
            gop_size=2,
            segments_per_frame=8,
            parity=True,
            retransmit_capacity=64,
            reconnect=ReconnectSupervisor(connect),
        )
        try:
            await node.stream_video(
                _sequencer(), _scenes(), keep_digital_image=False
            )
            results = await attach_tasks[-1]
        finally:
            await hub.close()
        return hub, node, results[0]

    return asyncio.run(scenario())


@pytest.mark.benchmark(group="chaos")
def test_chaos_burst_loss_goodput(benchmark):
    """Goodput under ~10 % burst loss: selective repeat beats the baseline."""
    base_channel, base_hub, base_node, base_result = _stream_burst_once(
        nack=False
    )
    channel, hub, node, result = benchmark.pedantic(
        lambda: _stream_burst_once(nack=True), rounds=3, iterations=1
    )

    base_delivered, base_expected = _delivered(base_hub)
    healed_delivered, healed_expected = _delivered(hub)
    rows = [
        {
            "mode": "resilient (PR-8)",
            "chunks_dropped": len(base_channel.dropped),
            "nacks": base_hub.stats().n_nacks_sent,
            "retransmits": base_node.n_retransmits,
            "goodput": base_delivered / base_expected,
        },
        {
            "mode": "self-healing",
            "chunks_dropped": len(channel.dropped),
            "nacks": hub.stats().n_nacks_sent,
            "retransmits": node.n_retransmits,
            "goodput": healed_delivered / healed_expected,
        },
    ]
    print_table("E17 — goodput under Gilbert-Elliott burst loss", rows)

    # The channel actually burst-dropped chunks in both runs, and the repair
    # machinery ran only where it was armed.
    assert base_channel.dropped and channel.dropped
    assert base_hub.stats().n_nacks_sent == 0
    assert hub.stats().n_nacks_sent > 0
    assert node.n_retransmits > 0
    assert result.n_frames == base_result.n_frames == N_FRAMES
    # Selective repeat strictly improves delivery on the same channel seed.
    assert healed_delivered > base_delivered


@pytest.mark.benchmark(group="chaos")
def test_chaos_reconnect_recovery_latency(benchmark):
    """End-to-end latency of a mid-GOP kill healed by resume."""
    hub, node, result = benchmark.pedantic(
        _stream_kill_and_resume_once, rounds=3, iterations=1
    )
    stats = hub.stats()
    assert node.n_resumes == 1
    assert stats.n_parked == 1
    assert stats.n_resumed == 1
    assert result.n_frames == N_FRAMES
    assert all(
        report.clean for report in hub.session_stats[1].frame_loss
    )
    print(
        f"\nkill-and-resume recovery: {benchmark.stats.stats.median * 1e3:.1f} ms "
        f"for {N_FRAMES} frames ({node.n_resume_retransmits} chunks replayed)"
    )
