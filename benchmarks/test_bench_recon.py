"""E16 — reconstruction throughput: matrix-free structured vs dense solves.

The ``recon`` group times the receiver half of the system, which PR 5 made
matrix-free: the rank-structured ``(R, C)`` operator replaces the dense Φ
matmuls, the tiled mosaic is solved by the einsum-driven batched multi-tile
FISTA, and step sizes are memoised per operator.

* ``test_recon_64x64_fista_dense`` / ``..._structured`` — one 64x64 frame
  through the proximal solver, dense reference vs matrix-free default;
* ``test_recon_64x64_omp_dense`` / ``..._structured`` — the greedy path,
  exercising the batched ``columns`` support solves;
* ``test_recon_tiled_256x256_dense_threaded`` / ``..._structured_batched``
  — the headline pair: a 16-tile 256x256 mosaic through the pre-PR per-tile
  thread-pool loop (dense operators) vs the batched structured default.
  The batched path must beat the per-tile thread pool by a wide margin
  (≥5x median on the reference runner; the inline assertion uses a 3x
  floor for noisy shared CI machines);
* ``test_recon_streamed_video_decode_and_reconstruct`` — a four-frame 64x64
  GOP video over loopback with reconstruction *enabled*: the frames/s a
  receiver actually sustains while decoding and inverting.

All entries are wired into ``benchmarks/baseline.json`` under the CI
regression gate, like every other tracked group.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_frame, reconstruct_tiled
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.shard import TiledSensorArray
from repro.sensor.video import VideoSequencer
from repro.stream.node import CameraNode
from repro.stream.receiver import StreamReceiver
from repro.stream.transport import LoopbackTransport

from conftest import print_table

MAX_ITERATIONS = 60
N_VIDEO_FRAMES = 4


@pytest.fixture(scope="module")
def single_frame(benchmark_seed):
    imager = CompressiveImager(SensorConfig(), seed=benchmark_seed)
    scene = make_scene("natural", (64, 64), seed=7)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    return imager.capture(current, n_samples=1228)


@pytest.fixture(scope="module")
def mosaic_capture(benchmark_seed):
    array = TiledSensorArray(
        (256, 256),
        tile_shape=(64, 64),
        compression_ratio=0.3,
        executor="serial",
        seed=benchmark_seed,
    )
    scene = make_scene("natural", (256, 256), seed=7)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    return array.capture(current)


@pytest.mark.benchmark(group="recon")
def test_recon_64x64_fista_dense(benchmark, single_frame):
    result = benchmark(
        lambda: reconstruct_frame(
            single_frame, operator="dense", max_iterations=MAX_ITERATIONS
        )
    )
    assert result.image.shape == (64, 64)


@pytest.mark.benchmark(group="recon")
def test_recon_64x64_fista_structured(benchmark, single_frame):
    structured = benchmark(
        lambda: reconstruct_frame(single_frame, max_iterations=MAX_ITERATIONS)
    )
    dense = reconstruct_frame(
        single_frame, operator="dense", max_iterations=MAX_ITERATIONS
    )
    # The recon-equivalence invariant, re-checked at benchmark scale.
    np.testing.assert_allclose(structured.image, dense.image, atol=1e-8)


@pytest.mark.benchmark(group="recon")
def test_recon_64x64_omp_dense(benchmark, single_frame):
    result = benchmark(
        lambda: reconstruct_frame(
            single_frame, solver="omp", sparsity=96, operator="dense"
        )
    )
    assert result.solver_result.sparsity <= 96


@pytest.mark.benchmark(group="recon")
def test_recon_64x64_omp_structured(benchmark, single_frame):
    result = benchmark(
        lambda: reconstruct_frame(single_frame, solver="omp", sparsity=96)
    )
    assert result.solver_result.sparsity <= 96


@pytest.mark.benchmark(group="recon")
def test_recon_tiled_256x256_dense_threaded(benchmark, mosaic_capture):
    """The pre-PR-5 default: dense per-tile solves on a thread pool."""
    result = benchmark(
        lambda: reconstruct_tiled(
            mosaic_capture,
            max_iterations=MAX_ITERATIONS,
            executor="thread",
            operator="dense",
        )
    )
    assert result.image.shape == (256, 256)


@pytest.mark.benchmark(group="recon")
def test_recon_tiled_256x256_structured_batched(benchmark, mosaic_capture):
    """The PR-5 default: stacked rank-structured factors, one einsum pass."""
    result = benchmark(
        lambda: reconstruct_tiled(mosaic_capture, max_iterations=MAX_ITERATIONS)
    )
    assert result.image.shape == (256, 256)
    assert result.metrics["psnr_db"] > 18.0


def test_batched_structured_beats_dense_per_tile(mosaic_capture):
    """The tentpole speedup, asserted: batched structured vs per-tile dense.

    The reference runner shows ~5x against the serial per-tile loop and ~7x
    against the thread-pool loop (BLAS contention makes the pool slower than
    serial on many-core machines); the assertion floor is 3x to stay robust
    on noisy shared CI runners.
    """

    def median_time(fn, repeats=3):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return float(np.median(times))

    batched = median_time(
        lambda: reconstruct_tiled(mosaic_capture, max_iterations=MAX_ITERATIONS)
    )
    dense_serial = median_time(
        lambda: reconstruct_tiled(
            mosaic_capture,
            max_iterations=MAX_ITERATIONS,
            executor="serial",
            operator="dense",
        ),
        repeats=1,
    )
    print_table(
        "Tiled 256x256 mosaic reconstruction (60 FISTA iterations)",
        [
            {"path": "dense per-tile serial", "seconds": dense_serial},
            {"path": "structured batched", "seconds": batched},
            {"path": "speedup", "seconds": dense_serial / batched},
        ],
    )
    assert dense_serial / batched > 3.0


@pytest.mark.benchmark(group="recon")
def test_recon_streamed_video_decode_and_reconstruct(benchmark, benchmark_seed):
    """Sustained receiver throughput: decode + incremental reconstruction."""

    def stream_and_reconstruct():
        sequencer = VideoSequencer(
            CompressiveImager(SensorConfig(), seed=benchmark_seed),
            samples_per_frame=512,
            seed=benchmark_seed,
        )
        scenes = [
            make_scene("natural", (64, 64), seed=index)
            for index in range(N_VIDEO_FRAMES)
        ]

        async def scenario():
            transport = LoopbackTransport(max_buffered=4)
            node = CameraNode(transport, gop_size=N_VIDEO_FRAMES)
            receiver = StreamReceiver(max_iterations=MAX_ITERATIONS)
            send_task = asyncio.create_task(
                node.stream_video(sequencer, scenes, keep_digital_image=False)
            )
            result = await receiver.run(transport)
            await send_task
            return result

        return asyncio.run(scenario())

    result = benchmark(stream_and_reconstruct)
    assert result.n_frames == N_VIDEO_FRAMES
    assert all(frame.reconstruction is not None for frame in result.frames)
