"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks the
PEP 660 editable-wheel path (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Focal-plane compressive sampling from time-encoded pixels "
        "(reproduction of Trevisi et al., DATE 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
