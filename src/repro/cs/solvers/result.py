"""Common result container and input normalisation for the solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cs.operators import BaseSensingOperator, SensingOperator


@dataclass
class SolverResult:
    """Outcome of a sparse-recovery solve.

    Attributes
    ----------
    coefficients:
        Recovered coefficient vector (dictionary domain).
    n_iterations:
        Iterations actually performed.
    converged:
        Whether the stopping tolerance was met before the iteration cap.
    residual_norm:
        Final ``||y - A z||_2``.
    history:
        Residual norm per iteration (useful for convergence plots/tests).
    """

    coefficients: np.ndarray
    n_iterations: int
    converged: bool
    residual_norm: float
    history: list[float] = field(default_factory=list)

    @property
    def sparsity(self) -> int:
        """Number of non-zero coefficients in the solution."""
        return int(np.count_nonzero(self.coefficients))

    def image(self, operator: SensingOperator) -> np.ndarray:
        """Synthesise the recovered coefficients into an image."""
        return operator.coefficients_to_image(self.coefficients)


def as_operator(
    operator_or_matrix: BaseSensingOperator | np.ndarray,
) -> BaseSensingOperator:
    """Accept a sensing operator (dense or structured) or a dense matrix."""
    if isinstance(operator_or_matrix, BaseSensingOperator):
        return operator_or_matrix
    return SensingOperator(np.asarray(operator_or_matrix, dtype=float))


def check_measurements(operator: BaseSensingOperator, measurements: np.ndarray) -> np.ndarray:
    """Validate and flatten the measurement vector."""
    measurements = np.asarray(measurements, dtype=float).reshape(-1)
    if measurements.size != operator.n_samples:
        raise ValueError(
            f"measurements must have {operator.n_samples} entries, got {measurements.size}"
        )
    return measurements
