"""Property-based tests for the column-bus token protocol.

The central invariants the paper's protocol must satisfy, checked on random
event patterns:

* no pulse is ever lost (every firing pixel's event is delivered),
* each pixel delivers exactly one event,
* no two events overlap on the bus,
* events are never emitted before their pixel has fired,
* when no deadline is imposed the bus utilisation equals events x duration.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pixel.event import PixelEvent
from repro.sensor.column_bus import ColumnBusArbiter

fire_time_lists = st.lists(
    st.floats(0.0, 20e-6, allow_nan=False, allow_infinity=False), min_size=1, max_size=64
)
durations = st.sampled_from([1e-9, 5e-9, 20e-9, 100e-9])


def build_events(times):
    return [PixelEvent(row=row, col=0, fire_time=t) for row, t in enumerate(times)]


@settings(max_examples=60, deadline=None)
@given(times=fire_time_lists, duration=durations)
def test_no_event_is_lost_and_each_pixel_emits_once(times, duration):
    result = ColumnBusArbiter(event_duration=duration).arbitrate(build_events(times))
    assert result.n_events == len(times)
    assert sorted(event.row for event in result.events) == list(range(len(times)))


@settings(max_examples=60, deadline=None)
@given(times=fire_time_lists, duration=durations)
def test_events_never_overlap_on_the_bus(times, duration):
    result = ColumnBusArbiter(event_duration=duration).arbitrate(build_events(times))
    emits = sorted(event.emit_time for event in result.events)
    for earlier, later in zip(emits, emits[1:]):
        assert later - earlier >= duration - 1e-15


@settings(max_examples=60, deadline=None)
@given(times=fire_time_lists, duration=durations)
def test_no_event_emitted_before_it_fires(times, duration):
    result = ColumnBusArbiter(event_duration=duration).arbitrate(build_events(times))
    for event in result.events:
        assert event.emit_time >= event.fire_time - 1e-15


@settings(max_examples=60, deadline=None)
@given(times=fire_time_lists, duration=durations)
def test_bus_busy_time_accounts_for_every_event(times, duration):
    result = ColumnBusArbiter(event_duration=duration).arbitrate(build_events(times))
    assert np.isclose(result.bus_busy_time, len(times) * duration)


@settings(max_examples=40, deadline=None)
@given(times=fire_time_lists, duration=durations)
def test_queue_statistics_consistent(times, duration):
    result = ColumnBusArbiter(event_duration=duration).arbitrate(build_events(times))
    queued = [event for event in result.events if event.queued_delay > 0.0]
    assert len(queued) == result.n_queued
    if queued:
        assert max(event.queued_delay for event in queued) <= result.max_queue_delay + 1e-15
    else:
        assert result.max_queue_delay == 0.0
