"""Tests for the global-counter time-to-digital converter."""

import numpy as np
import pytest

from repro.sensor.tdc import GlobalCounterTDC, apply_stochastic_lsb_error


class TestGeometry:
    def test_default_matches_prototype(self):
        tdc = GlobalCounterTDC()
        assert tdc.n_codes == 256
        assert tdc.max_code == 255
        assert tdc.clock_period == pytest.approx(1 / 24e6)
        assert tdc.conversion_window == pytest.approx(256 / 24e6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GlobalCounterTDC(clock_frequency=0.0)
        with pytest.raises(ValueError):
            GlobalCounterTDC(n_bits=0)


class TestSampling:
    def test_code_is_floor_of_time_over_period(self):
        tdc = GlobalCounterTDC(clock_frequency=1e6, n_bits=8)  # 1 us ticks
        codes = tdc.sample(np.array([0.0, 0.5e-6, 1.0e-6, 10.4e-6]))
        assert codes.tolist() == [0, 0, 1, 10]

    def test_codes_clip_at_max(self):
        tdc = GlobalCounterTDC(clock_frequency=1e6, n_bits=4)
        assert tdc.sample(np.array([1.0]))[0] == 15

    def test_negative_times_clip_at_zero(self):
        tdc = GlobalCounterTDC()
        assert tdc.sample(np.array([-1e-6]))[0] == 0

    def test_start_delay_shifts_codes(self):
        delayed = GlobalCounterTDC(clock_frequency=1e6, start_delay=2e-6)
        assert delayed.sample(np.array([2.5e-6]))[0] == 0
        assert delayed.sample(np.array([4.0e-6]))[0] == 2

    def test_ideal_codes_saturate_for_non_firing_pixels(self):
        tdc = GlobalCounterTDC()
        codes = tdc.ideal_codes(np.array([1e-6, np.inf]))
        assert codes[1] == tdc.max_code

    def test_brighter_means_smaller_code(self):
        """Bright pixels fire earlier and therefore sample a smaller count."""
        tdc = GlobalCounterTDC()
        codes = tdc.ideal_codes(np.array([1e-6, 5e-6]))
        assert codes[0] < codes[1]

    def test_code_to_time_is_centre_of_bin(self):
        tdc = GlobalCounterTDC(clock_frequency=1e6)
        assert tdc.code_to_time(np.array([3]))[0] == pytest.approx(3.5e-6)

    def test_quantization_round_trip_within_one_lsb(self):
        tdc = GlobalCounterTDC()
        times = np.linspace(0.1e-6, 10e-6, 50)
        recovered = tdc.code_to_time(tdc.sample(times))
        assert np.max(np.abs(recovered - times)) <= tdc.quantization_error_bound()


class TestLateDetectionError:
    def test_unqueued_events_have_no_error(self):
        tdc = GlobalCounterTDC()
        times = np.array([1e-6, 2e-6, 3e-6])
        stats = tdc.lsb_error_statistics(times, times)
        assert stats["n_errors"] == 0

    def test_queueing_across_a_tick_gives_one_lsb(self):
        tdc = GlobalCounterTDC(clock_frequency=1e6)
        fire = np.array([0.9e-6])
        emit = np.array([1.1e-6])  # pushed into the next tick by queueing
        stats = tdc.lsb_error_statistics(emit, fire)
        assert stats["n_errors"] == 1
        assert stats["max_error_lsb"] == 1

    def test_small_queueing_within_a_tick_is_free(self):
        tdc = GlobalCounterTDC(clock_frequency=1e6)
        fire = np.array([0.1e-6])
        emit = np.array([0.8e-6])
        assert tdc.lsb_error_statistics(emit, fire)["n_errors"] == 0

    def test_mismatched_shapes_rejected(self):
        tdc = GlobalCounterTDC()
        with pytest.raises(ValueError):
            tdc.late_detection_codes(np.zeros(3), np.zeros(4))


class TestStochasticError:
    def test_probability_zero_is_identity(self):
        codes = np.arange(10)
        rng = np.random.default_rng(0)
        assert np.array_equal(
            apply_stochastic_lsb_error(codes, 0.0, max_code=255, rng=rng), codes
        )

    def test_probability_one_bumps_everything_below_max(self):
        codes = np.array([0, 100, 255])
        rng = np.random.default_rng(0)
        bumped = apply_stochastic_lsb_error(codes, 1.0, max_code=255, rng=rng)
        assert bumped.tolist() == [1, 101, 255]

    def test_expected_bump_rate(self):
        codes = np.zeros(20000, dtype=np.int64)
        rng = np.random.default_rng(1)
        bumped = apply_stochastic_lsb_error(codes, 0.1, max_code=255, rng=rng)
        assert 0.08 < bumped.mean() < 0.12

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            apply_stochastic_lsb_error(np.zeros(3), 1.5, max_code=255, rng=np.random.default_rng(0))
