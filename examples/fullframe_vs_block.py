"""Full-frame CA-generated strategy versus block-based compressive sampling.

The conclusions of the paper frame the key experiment the prototype was built
to enable: comparing a *full-frame* compressive strategy (generated on chip by
the Rule 30 CA) against the *block-based* schemes used by earlier CS imagers
([6][7][8]).  Block-based CS needs far less dynamic range and a much smaller
Φ, but pays for it in reconstruction quality because small blocks are not very
sparse — exactly the trade-off discussed in Sections I and II.

This example runs that comparison in simulation at equal measurement budgets
and prints the PSNR of each strategy across compression ratios.

Run:  python examples/fullframe_vs_block.py
"""

from repro.analysis.experiments import strategy_comparison, sweep_compression_ratio


def main() -> None:
    scenes = ["blobs", "natural"]
    strategies = ["ca-xor", "block-8", "block-16", "bernoulli"]
    ratios = [0.1, 0.2, 0.3, 0.4]

    print("Running the sweep (a few tens of reconstructions)...\n")
    records = sweep_compression_ratio(
        scenes, strategies, ratios, image_shape=(64, 64), max_iterations=150, seed=2018
    )
    summary = strategy_comparison(records)

    header = f"{'strategy':>12} " + " ".join(f"R={r:4.2f}" for r in ratios)
    print("Average PSNR (dB) over scenes " + str(scenes))
    print(header)
    for strategy in strategies:
        cells = " ".join(f"{summary[strategy][r]:6.2f}" for r in ratios)
        print(f"{strategy:>12} {cells}")

    print(
        "\nExpected shape: the full-frame CA strategy ('ca-xor') tracks the dense "
        "Bernoulli reference and beats 8x8 block CS at low compression ratios, with "
        "the gap narrowing as more samples become available — the trade-off the "
        "paper's conclusions describe."
    )


if __name__ == "__main__":
    main()
