"""Autonomous camera node streaming over a restricted data rate.

The paper's introduction motivates focal-plane compressive sampling with an
autonomous camera node that must "deliver images over a network under a
restricted data rate and still receive enough meaningful information", without
the memory and processing cost of digitising the full image and compressing it
afterwards.

This example simulates that node: given a channel budget in bits per frame, it
chooses the number of compressed samples that fits, streams them (plus the
128-bit CA seed) and reports the reconstruction quality the receiver obtains.
It sweeps the channel budget to show the graceful quality/rate trade-off, and
contrasts the side-information cost against a system that would have to ship
the full measurement matrix.

Run:  python examples/camera_node_streaming.py
"""


from repro import CompressiveImager, SensorConfig, make_scene, psnr, reconstruct_frame


def stream_frame(imager, scene, bit_budget):
    """Capture and 'transmit' one frame under the given channel budget."""
    config = imager.config
    seed_bits = config.rows + config.cols
    usable_bits = max(0, bit_budget - seed_bits)
    n_samples = min(
        config.samples_per_frame, usable_bits // config.compressed_sample_bits
    )
    if n_samples == 0:
        raise ValueError("bit budget too small for even one compressed sample")
    frame = imager.capture_scene(scene, n_samples=int(n_samples))
    result = reconstruct_frame(frame, max_iterations=150)
    reference = frame.digital_image.astype(float)
    return {
        "bit_budget": bit_budget,
        "n_samples": frame.n_samples,
        "ratio": frame.compression_ratio,
        "bits_used": frame.compressed_bits + seed_bits,
        "psnr_db": psnr(reference, result.image),
    }


def main() -> None:
    config = SensorConfig()
    imager = CompressiveImager(config, seed=7)
    scene = make_scene("natural", (config.rows, config.cols), seed=5)

    raw_bits = config.n_pixels * config.pixel_bits
    print(f"Raw read-out of one frame: {raw_bits} bits")
    print(f"Side information per frame: {config.rows + config.cols} bits (the CA seed)")
    print(f"If Phi itself had to be transmitted instead: "
          f"{config.samples_per_frame * config.n_pixels} bits\n")

    print(f"{'budget (bits)':>14} {'samples':>8} {'R':>6} {'bits used':>10} {'PSNR (dB)':>10}")
    for fraction in (0.08, 0.15, 0.25, 0.35):
        budget = int(fraction * raw_bits)
        row = stream_frame(imager, scene, budget)
        print(
            f"{row['bit_budget']:>14} {row['n_samples']:>8} {row['ratio']:>6.2f} "
            f"{row['bits_used']:>10} {row['psnr_db']:>10.2f}"
        )

    print(
        "\nQuality degrades gracefully as the channel shrinks; the node never needs "
        "to store or transmit the measurement matrix, only the CA seed."
    )


if __name__ == "__main__":
    main()
