"""The receiving end: decode chunks as they arrive, reconstruct incrementally.

:class:`StreamReceiver` is the off-chip half of the paper's system running as
a service.  It pulls byte slices from a transport, reassembles them into
chunks (:class:`~repro.stream.protocol.ChunkDecoder`), decodes each embedded
v2 frame the moment it lands and reconstructs *incrementally*:

* tiled streams feed an
  :class:`~repro.recon.incremental.IncrementalTiledReconstructor` per frame.
  By default the tiles of a frame are collected as they land and inverted
  **batched** at the ``FRAME_COMPLETE`` barrier — every equal-shape tile of
  the mosaic iterated through one einsum-driven multi-tile FISTA pass over
  the stacked rank-structured ``(R, C)`` factors, exactly the path
  in-process :func:`~repro.recon.pipeline.reconstruct_tiled` defaults to,
  so streamed and in-process reconstructions stay byte-identical.  With
  ``eager=True`` the receiver instead inverts each tile the moment its
  chunk lands — tile ``(0, 0)`` is being solved while tile ``(3, 3)`` is
  still on the wire — matching the ``serial``/``thread`` per-tile
  executors of ``reconstruct_tiled`` byte for byte;
* video streams maintain one **seed chain** per tile position: keyframes
  re-anchor the chain with their inline seed, seedless frames decode against
  it, and after every frame the chain advances by the one-pattern frame
  overlap (:func:`~repro.stream.protocol.advance_seed_state`) — the receiver
  stays synchronised with the sensor's free-running CA for free, which is the
  paper's central selling point exercised over an actual wire.

Reconstruction runs on a worker executor so the event loop keeps draining
the transport; with reconstruction disabled the receiver is a pure decoder
(useful for benchmarks and relays).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.cs.operators import StepSizeCache
from repro.io.framing import decode_frame
from repro.recon.incremental import IncrementalTiledReconstructor
from repro.recon.pipeline import (
    ReconstructionResult,
    TiledReconstructionResult,
    reconstruct_frame,
)
from repro.sensor.imager import CompressedFrame
from repro.sensor.shard import (
    TiledCaptureResult,
    TileSlot,
    merge_tile_statistics,
    tile_grid,
)
from repro.stream.protocol import (
    Chunk,
    ChunkDecoder,
    ChunkType,
    FrameData,
    StreamHeader,
    StreamProtocolError,
    advance_seed_state,
    decode_frame_complete,
    decode_frame_data,
    decode_stream_end,
    decode_stream_header,
)
from repro.stream.transport import Transport


@dataclass
class ReceivedFrame:
    """One fully-landed frame: the decoded capture and (optionally) its image.

    Attributes
    ----------
    frame_index:
        Position in the stream.
    capture:
        The decoded payload — a :class:`CompressedFrame` for single-sensor
        streams, a reassembled :class:`TiledCaptureResult` for mosaics (its
        metadata is :func:`~repro.sensor.shard.merge_tile_statistics` over
        the decoded tiles, so the event statistics that crossed the wire
        aggregate exactly as the capture side aggregated them).
    reconstruction:
        The incremental reconstruction, or ``None`` when the receiver runs
        as a pure decoder.
    """

    frame_index: int
    capture: CompressedFrame | TiledCaptureResult
    reconstruction: ReconstructionResult | TiledReconstructionResult | None = None


@dataclass
class StreamResult:
    """Everything one stream delivered."""

    header: StreamHeader | None = None
    frames: list[ReceivedFrame] = field(default_factory=list)
    n_chunks: int = 0
    n_bytes: int = 0
    announced_frames: int | None = None

    @property
    def n_frames(self) -> int:
        """Frames fully received."""
        return len(self.frames)


class StreamReceiver:
    """Consume one stream from a transport, decoding and reconstructing live.

    Parameters
    ----------
    reconstruct:
        When false the receiver only decodes (no sparse recovery) — the
        relay/benchmark mode.
    dictionary, solver, regularization, sparsity, max_iterations, operator:
        Per-frame/tile reconstruction options, as in
        :func:`~repro.recon.pipeline.reconstruct_frame`.
    eager:
        ``False`` (default) collects a tiled frame's tiles and inverts them
        batched at the frame barrier — the multi-tile fast path, identical
        to default in-process ``reconstruct_tiled``.  ``True`` restores the
        progressive per-tile mode: each tile's solve is scheduled the
        moment its chunk lands, overlapping reconstruction with the wire.
    step_cache:
        Optional :class:`~repro.cs.operators.StepSizeCache` shared across
        the stream's frames: per-tile power-iteration step sizes are then
        memoised and warm-started along the GOP chain instead of being
        re-estimated from scratch every frame.  Off by default because the
        warm starts shift the step estimates (and hence the reconstructed
        images, by small but far-above-round-off amounts), which would
        break byte-identity with an isolated in-process reconstruction of
        the same frames.
    executor:
        ``concurrent.futures`` executor for the reconstruction work; ``None``
        uses the event loop's default thread pool.
    """

    #: How many whole-frame batched solves may be in flight at once before
    #: the frame barrier awaits the oldest.  One is enough to overlap the
    #: current frame's solve with the next frame's wire transfer while
    #: keeping receiver memory bounded.
    MAX_INFLIGHT_TILED_SOLVES = 1

    def __init__(
        self,
        *,
        reconstruct: bool = True,
        dictionary: str = "dct",
        solver: str = "fista",
        regularization: float | None = None,
        sparsity: int | None = None,
        max_iterations: int | None = None,
        operator: str = "structured",
        eager: bool = False,
        step_cache: StepSizeCache | None = None,
        executor: Executor | None = None,
    ) -> None:
        self.reconstruct = bool(reconstruct)
        self.dictionary = dictionary
        self.solver = solver
        self.regularization = regularization
        self.sparsity = sparsity
        self.max_iterations = None if max_iterations is None else int(max_iterations)
        self.operator = operator
        self.eager = bool(eager)
        self.step_cache = step_cache
        self.executor = executor
        # The one option set shared by the single-frame solve path and the
        # tiled reconstructors — the two cannot diverge in configuration.
        self._recon_options = dict(
            dictionary=dictionary,
            solver=solver,
            regularization=regularization,
            sparsity=sparsity,
            max_iterations=self.max_iterations,
            operator=operator,
            step_cache=step_cache,
        )
        self._reset_stream_state()

    def _reset_stream_state(self) -> None:
        """Forget everything about the previous stream (called per run)."""
        self._header: StreamHeader | None = None
        self._slots: list[list[TileSlot]] | None = None
        self._result = StreamResult()
        self._next_sequence = 0
        self._ended = False
        # Per tile-position seed chains for seedless (GOP) frames.
        self._seed_chains: dict[tuple[int, int], np.ndarray] = {}
        # Per in-flight frame: grid of decoded tile frames, the frame's
        # reconstructor, and the in-flight solve tasks (position, frame,
        # task) awaited at the frame barrier.
        self._pending_tiles: dict[int, list[list[CompressedFrame | None]]] = {}
        self._pending_recon: dict[int, IncrementalTiledReconstructor] = {}
        self._pending_solves: dict[int, list[tuple[int, int, CompressedFrame, asyncio.Task[Any]]]] = {}
        # Single-sensor streams: (ReceivedFrame, task) pairs whose
        # reconstructions are attached at end-of-stream.
        self._pending_frame_solves: list[tuple[ReceivedFrame, asyncio.Task[Any]]] = []
        # Batched tiled mode: the (bounded) queue of in-flight whole-frame
        # solves — frame k's solve overlaps frame k+1's wire time, but the
        # barrier awaits older solves past the depth bound so a stream that
        # outruns the solver cannot accumulate unbounded work.
        self._pending_tiled_solves: list[tuple[ReceivedFrame, asyncio.Task[Any]]] = []

    # -------------------------------------------------------------- helpers
    async def _run(self, fn: Callable[..., Any], *args: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    def _new_reconstructor(self) -> IncrementalTiledReconstructor:
        return IncrementalTiledReconstructor(
            self._header.scene_shape,
            self._header.tile_shape,
            **self._recon_options,
        )

    def _solve_frame(self, frame: CompressedFrame) -> ReconstructionResult:
        return reconstruct_frame(frame, **self._recon_options)

    def _solve_tiled_batched(
        self,
        tiles: list[list[CompressedFrame | None]],
        capture_metadata: dict[str, object],
    ) -> TiledReconstructionResult:
        """Invert one complete tiled frame through the batched barrier solve."""
        reconstructor = self._new_reconstructor()
        for grid_row, row in enumerate(tiles):
            for grid_col, frame in enumerate(row):
                reconstructor.stage_tile(grid_row, grid_col, frame)
        reconstructor.solve_staged()
        return reconstructor.result(capture_metadata=capture_metadata)

    # ------------------------------------------------------------- chunk fsm
    async def run(self, transport: Transport) -> StreamResult:
        """Drain the transport until end-of-stream; return everything landed.

        Raises :class:`StreamProtocolError` on malformed chunks, sequence
        gaps, duplicate tiles, or a stream that ends mid-frame.  A receiver
        instance can be reused: each call starts from a clean slate.
        """
        self._reset_stream_state()
        decoder = ChunkDecoder()
        try:
            while not self._ended:
                data = await transport.recv()
                if data is None:
                    break
                self._result.n_bytes += len(data)
                for chunk in decoder.feed(data):
                    await self._handle_chunk(chunk)
            if not self._ended:
                raise StreamProtocolError(
                    "transport closed before the stream-end chunk arrived"
                )
            if decoder.pending_bytes:
                raise StreamProtocolError(
                    f"{decoder.pending_bytes} trailing bytes after the stream end"
                )
            if self._pending_tiles:
                pending = sorted(self._pending_tiles)
                raise StreamProtocolError(
                    f"stream ended with incomplete tiled frames: {pending}"
                )
            for received, task in self._pending_frame_solves:
                received.reconstruction = await task
            self._pending_frame_solves = []
            for received, task in self._pending_tiled_solves:
                received.reconstruction = await task
            self._pending_tiled_solves = []
        except BaseException:
            # Don't leak in-flight solves when the stream errors out.
            for solves in self._pending_solves.values():
                for _, _, _, task in solves:
                    task.cancel()
            for _, task in self._pending_frame_solves:
                task.cancel()
            for _, task in self._pending_tiled_solves:
                task.cancel()
            raise
        return self._result

    async def _handle_chunk(self, chunk: Chunk) -> None:
        if self._ended:
            raise StreamProtocolError(
                f"{chunk.chunk_type.name} chunk after the stream end"
            )
        if chunk.sequence != self._next_sequence:
            raise StreamProtocolError(
                f"chunk sequence jumped to {chunk.sequence}, "
                f"expected {self._next_sequence}"
            )
        self._next_sequence += 1
        self._result.n_chunks += 1
        if chunk.chunk_type == ChunkType.STREAM_START:
            if self._header is not None:
                raise StreamProtocolError("duplicate stream-start chunk")
            self._header = decode_stream_header(chunk.payload)
            self._result.header = self._header
            if self._header.tiled:
                self._slots = tile_grid(
                    self._header.scene_shape, self._header.tile_shape
                )
            return
        if self._header is None:
            raise StreamProtocolError(
                f"{chunk.chunk_type.name} chunk before the stream start"
            )
        if chunk.chunk_type == ChunkType.FRAME_DATA:
            await self._handle_frame_data(chunk)
        elif chunk.chunk_type == ChunkType.FRAME_COMPLETE:
            await self._handle_frame_complete(chunk)
        elif chunk.chunk_type == ChunkType.STREAM_END:
            self._result.announced_frames = decode_stream_end(chunk.payload)
            self._ended = True

    def _decode_with_chain(
        self, data: FrameData, key: tuple[int, int], keyframe: bool
    ) -> CompressedFrame:
        """Decode one embedded frame, maintaining the position's seed chain."""
        if keyframe:
            frame = decode_frame(data.frame_bytes)
        else:
            chain = self._seed_chains.get(key)
            if chain is None:
                raise StreamProtocolError(
                    f"seedless frame for tile {key} arrived before any keyframe"
                )
            frame = decode_frame(data.frame_bytes, seed_state=chain)
        # The one-pattern frame overlap: this frame's last selection pattern
        # seeds the next frame at this position.  Keyframe-only streams
        # (gop_size <= 1) never read the chain, so skip the CA evolution on
        # their decode hot path.
        if self._header.gop_size > 1:
            self._seed_chains[key] = advance_seed_state(
                frame.seed_state,
                frame.rule_number,
                n_samples=frame.n_samples,
                steps_per_sample=frame.steps_per_sample,
                warmup_steps=frame.warmup_steps,
            )
        return frame

    async def _handle_frame_data(self, chunk: Chunk) -> None:
        data = decode_frame_data(chunk.payload)
        key = (data.grid_row, data.grid_col)
        frame = self._decode_with_chain(data, key, data.keyframe)
        if not self._header.tiled:
            if key != (0, 0):
                raise StreamProtocolError(
                    f"tile position {key} in a single-sensor stream"
                )
            expected = self._header.scene_shape
            if (frame.config.rows, frame.config.cols) != expected:
                raise StreamProtocolError(
                    f"frame {data.frame_index} geometry "
                    f"{(frame.config.rows, frame.config.cols)} does not match "
                    f"the announced scene {expected}"
                )
            received = ReceivedFrame(frame_index=data.frame_index, capture=frame)
            self._result.frames.append(received)
            if self.reconstruct:
                # Schedule the solve but keep draining the transport; the
                # result is attached at end-of-stream (see :meth:`run`).
                task = asyncio.ensure_future(self._run(self._solve_frame, frame))
                self._pending_frame_solves.append((received, task))
            return
        # Tiled: land the tile in its in-flight frame (solved per-tile right
        # away in eager mode, or collected for the barrier's batched solve).
        grid_rows, grid_cols = len(self._slots), len(self._slots[0])
        if not (data.grid_row < grid_rows and data.grid_col < grid_cols):
            raise StreamProtocolError(
                f"tile position {key} outside the {grid_rows}x{grid_cols} grid"
            )
        slot = self._slots[data.grid_row][data.grid_col]
        if (frame.config.rows, frame.config.cols) != (slot.rows, slot.cols):
            raise StreamProtocolError(
                f"tile {key} of frame {data.frame_index} is "
                f"{frame.config.rows}x{frame.config.cols}, its slot expects "
                f"{slot.rows}x{slot.cols}"
            )
        tiles = self._pending_tiles.setdefault(
            data.frame_index,
            [[None] * grid_cols for _ in range(grid_rows)],
        )
        if tiles[data.grid_row][data.grid_col] is not None:
            raise StreamProtocolError(
                f"duplicate tile {key} in frame {data.frame_index}"
            )
        tiles[data.grid_row][data.grid_col] = frame
        if self.reconstruct and self.eager:
            reconstructor = self._pending_recon.get(data.frame_index)
            if reconstructor is None:
                reconstructor = self._new_reconstructor()
                self._pending_recon[data.frame_index] = reconstructor
            # Eager mode: schedule the solve but keep draining the transport —
            # with a multi-worker executor, several tiles reconstruct
            # concurrently while later chunks are still arriving.  The tasks
            # are awaited (and stitched, in arrival order) at the frame
            # barrier.  In the default batched mode the tiles just accumulate
            # here and the barrier inverts them all in one stacked solve.
            task = asyncio.ensure_future(
                self._run(reconstructor.solve_tile, frame)
            )
            self._pending_solves.setdefault(data.frame_index, []).append(
                (data.grid_row, data.grid_col, frame, task)
            )

    async def _handle_frame_complete(self, chunk: Chunk) -> None:
        frame_index, n_tiles = decode_frame_complete(chunk.payload)
        if not self._header.tiled:
            raise StreamProtocolError(
                "frame-complete barrier in a single-sensor stream"
            )
        tiles = self._pending_tiles.pop(frame_index, None)
        if tiles is None:
            raise StreamProtocolError(
                f"frame-complete for unknown frame {frame_index}"
            )
        flat = [frame for row in tiles for frame in row]
        if any(frame is None for frame in flat):
            missing = sum(frame is None for frame in flat)
            raise StreamProtocolError(
                f"frame {frame_index} completed with {missing} tiles missing"
            )
        if n_tiles != len(flat):
            raise StreamProtocolError(
                f"frame {frame_index} barrier announces {n_tiles} tiles, "
                f"grid has {len(flat)}"
            )
        capture = TiledCaptureResult(
            tiles=tiles,
            slots=self._slots,
            scene_shape=self._header.scene_shape,
            tile_shape=self._header.tile_shape,
            metadata=merge_tile_statistics(flat),
        )
        reconstruction = None
        if self.reconstruct and self.eager:
            reconstructor = self._pending_recon.pop(frame_index)
            solves = self._pending_solves.pop(frame_index, [])
            try:
                for grid_row, grid_col, frame, task in solves:
                    reconstructor.insert_result(
                        grid_row, grid_col, frame, await task
                    )
            except BaseException:
                # One tile's solve failed: don't let its siblings keep
                # running unobserved (they left _pending_solves above).
                for _, _, _, task in solves:
                    task.cancel()
                raise
            reconstruction = reconstructor.result(
                capture_metadata=capture.metadata
            )
        received = ReceivedFrame(
            frame_index=frame_index,
            capture=capture,
            reconstruction=reconstruction,
        )
        self._result.frames.append(received)
        if self.reconstruct and not self.eager:
            # Batched mode: every tile of the frame has landed — schedule the
            # stacked multi-tile solve on the worker executor (the same
            # stage/solve_staged path in-process reconstruct_tiled defaults
            # to, so the streamed result is byte-identical to it) while the
            # transport keeps draining the next frame's chunks.  Older
            # in-flight solves are awaited here past the depth bound, so a
            # stream faster than the solver back-pressures instead of
            # accumulating frames without limit.
            while len(self._pending_tiled_solves) >= self.MAX_INFLIGHT_TILED_SOLVES:
                earlier, task = self._pending_tiled_solves.pop(0)
                earlier.reconstruction = await task
            task = asyncio.ensure_future(
                self._run(self._solve_tiled_batched, tiles, capture.metadata)
            )
            self._pending_tiled_solves.append((received, task))


async def receive_stream(transport: Transport, **options: Any) -> StreamResult:
    """One-shot convenience: ``StreamReceiver(**options).run(transport)``."""
    return await StreamReceiver(**options).run(transport)
