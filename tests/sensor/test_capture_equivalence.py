"""Seeded equivalence regression tests for the batched capture engine.

The behavioural capture path used to materialise one selection pattern at a
time in a Python loop; it is now a single CA-matrix build plus one
(rank-structured) matmul, with the LSB-error injection vectorised over the
whole frame.  These tests pin the contract that made the rewrite safe: for
the same imager seed, the batched engine produces **byte-identical**
``CompressedFrame.samples`` — including the stochastic LSB-error draws,
which must consume the generator stream in exactly the legacy per-pattern
order — across sensor shapes, CA sequencing parameters and saturation
regimes.  ``capture_batch`` is likewise pinned against the sequential
re-seeding loop the video sequencer used to run.
"""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.tdc import apply_stochastic_lsb_error
from repro.utils.rng import derive_seed, new_rng


def photocurrents(shape, seed=0):
    scene = make_scene("blobs", shape, seed=seed)
    return PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)


def legacy_behavioural_capture(
    imager: CompressiveImager,
    photocurrent: np.ndarray,
    n_samples: int,
    *,
    lsb_error: bool = True,
    auto_expose: bool = True,
):
    """The seed repository's per-pattern behavioural loop, verbatim.

    Kept as the executable specification of the capture semantics: one
    selection pattern at a time, one RNG draw call per pattern over that
    pattern's selected codes, in raster order.
    """
    if auto_expose:
        imager.auto_expose(photocurrent)
    rng = new_rng(derive_seed(imager.seed, "capture"))
    times = imager.firing_times(photocurrent, rng=rng)
    codes = imager.tdc.ideal_codes(times)
    imager.selection.reset()
    lsb_probability = 0.0
    if lsb_error:
        lsb_probability = imager.config.event_overlap_probability(imager.config.rows // 2)
    samples = np.empty(n_samples, dtype=np.int64)
    n_bumped = 0
    for index, pattern in enumerate(imager.selection.patterns(n_samples)):
        selected = pattern.mask.astype(bool)
        selected_codes = codes[selected]
        if lsb_probability > 0.0 and selected_codes.size:
            bumped = apply_stochastic_lsb_error(
                selected_codes,
                lsb_probability,
                max_code=imager.tdc.max_code,
                rng=rng,
            )
            n_bumped += int(np.count_nonzero(bumped - selected_codes))
            selected_codes = bumped
        samples[index] = int(selected_codes.sum())
    return samples, n_bumped, codes


SENSOR_CASES = [
    pytest.param(dict(rows=16, cols=16), dict(), id="16x16-default"),
    pytest.param(dict(rows=32, cols=32), dict(), id="32x32-default"),
    pytest.param(dict(rows=16, cols=32), dict(), id="16x32-rectangular"),
    pytest.param(dict(rows=16, cols=16), dict(steps_per_sample=3), id="16x16-stride3"),
    pytest.param(dict(rows=16, cols=16), dict(warmup_steps=0), id="16x16-no-warmup"),
    pytest.param(dict(rows=16, cols=16), dict(rule=90), id="16x16-rule90"),
]


class TestBehaviouralEquivalence:
    @pytest.mark.parametrize("config_kwargs, imager_kwargs", SENSOR_CASES)
    @pytest.mark.parametrize("lsb_error", [True, False], ids=["lsb", "no-lsb"])
    def test_batched_capture_matches_legacy_loop(
        self, config_kwargs, imager_kwargs, lsb_error
    ):
        config = SensorConfig(**config_kwargs)
        current = photocurrents((config.rows, config.cols), seed=7)
        n_samples = 60
        reference_imager = CompressiveImager(config, seed=99, **imager_kwargs)
        expected, expected_bumps, expected_codes = legacy_behavioural_capture(
            reference_imager, current, n_samples, lsb_error=lsb_error
        )
        frame = CompressiveImager(config, seed=99, **imager_kwargs).capture(
            current, n_samples=n_samples, lsb_error=lsb_error
        )
        assert frame.samples.dtype == expected.dtype
        assert frame.samples.tobytes() == expected.tobytes()
        assert frame.metadata["n_lsb_errors"] == expected_bumps
        assert np.array_equal(frame.digital_image, expected_codes)

    def test_saturated_codes_match_legacy_loop(self):
        """Saturated pixels force the per-event fallback; it must stay exact.

        Without auto-exposure a dim scene leaves pixels that never fire
        inside the conversion window, so their codes clip at ``max_code``
        and an LSB bump on them must neither shift the sample nor count as
        an error — in either engine.
        """
        config = SensorConfig(rows=16, cols=16)
        current = photocurrents((16, 16), seed=5) * 1e-3  # dim: most pixels saturate
        reference_imager = CompressiveImager(config, seed=11)
        expected, expected_bumps, expected_codes = legacy_behavioural_capture(
            reference_imager, current, 40, auto_expose=False
        )
        assert expected_codes.max() >= reference_imager.tdc.max_code  # regime check
        frame = CompressiveImager(config, seed=11).capture(
            current, n_samples=40, auto_expose=False
        )
        assert frame.samples.tobytes() == expected.tobytes()
        assert frame.metadata["n_lsb_errors"] == expected_bumps

    def test_generator_left_where_legacy_loop_left_it(self):
        """A follow-up capture must continue the CA exactly as before."""
        config = SensorConfig(rows=16, cols=16)
        current = photocurrents((16, 16), seed=2)
        legacy = CompressiveImager(config, seed=4)
        legacy_behavioural_capture(legacy, current, 25)
        batched = CompressiveImager(config, seed=4)
        batched.capture(current, n_samples=25)
        assert np.array_equal(
            legacy.selection._automaton.state, batched.selection._automaton.state
        )
        assert legacy.selection.sample_index == batched.selection.sample_index


def sequential_capture_batch(
    imager: CompressiveImager, currents, n_samples: int
):
    """The per-frame loop `VideoSequencer` used to run: capture, then re-seed
    the generator from the CA end state with no warm-up."""
    from repro.ca.selection import CASelectionGenerator

    frames = []
    for current in currents:
        frames.append(imager.capture(current, n_samples=n_samples))
        end_state = imager.selection._automaton.state
        imager.selection = CASelectionGenerator(
            imager.config.rows,
            imager.config.cols,
            seed_state=end_state,
            rule=imager.rule_number,
            steps_per_sample=imager.steps_per_sample,
            warmup_steps=0,
        )
        imager.warmup_steps = 0
    return frames


class TestCaptureBatchEquivalence:
    def test_capture_batch_matches_sequential_loop(self):
        config = SensorConfig(rows=16, cols=16)
        currents = [photocurrents((16, 16), seed=s) for s in range(4)]
        expected = sequential_capture_batch(
            CompressiveImager(config, seed=21), currents, 30
        )
        frames = CompressiveImager(config, seed=21).capture_batch(
            currents, n_samples=30
        )
        assert len(frames) == len(expected)
        for frame, reference in zip(frames, expected):
            assert frame.samples.tobytes() == reference.samples.tobytes()
            assert np.array_equal(frame.seed_state, reference.seed_state)
            assert frame.warmup_steps == reference.warmup_steps
            assert frame.metadata["n_lsb_errors"] == reference.metadata["n_lsb_errors"]
            assert np.array_equal(frame.digital_image, reference.digital_image)

    def test_capture_batch_frames_independently_decodable(self):
        config = SensorConfig(rows=16, cols=16)
        currents = [photocurrents((16, 16), seed=s) for s in range(3)]
        imager = CompressiveImager(config, seed=33)
        frames = imager.capture_batch(currents, n_samples=20, lsb_error=False)
        for frame in frames:
            phi = frame.measurement_matrix()
            expected = phi.astype(np.int64) @ frame.digital_image.reshape(-1)
            assert np.array_equal(frame.samples, expected)

    def test_capture_batch_then_capture_continues_the_ca(self):
        config = SensorConfig(rows=16, cols=16)
        currents = [photocurrents((16, 16), seed=s) for s in range(2)]
        sequential = CompressiveImager(config, seed=8)
        sequential_capture_batch(sequential, currents, 15)
        follow_up_expected = sequential.capture(currents[0], n_samples=15)
        batched = CompressiveImager(config, seed=8)
        batched.capture_batch(currents, n_samples=15)
        follow_up = batched.capture(currents[0], n_samples=15)
        assert follow_up.samples.tobytes() == follow_up_expected.samples.tobytes()
        assert np.array_equal(follow_up.seed_state, follow_up_expected.seed_state)

    def test_empty_batch(self):
        imager = CompressiveImager(SensorConfig(rows=16, cols=16), seed=1)
        assert imager.capture_batch([]) == []

    def test_single_sample_frames(self):
        """n_samples=1 makes consecutive frames share their only pattern."""
        config = SensorConfig(rows=16, cols=16)
        currents = [photocurrents((16, 16), seed=s) for s in range(3)]
        expected = sequential_capture_batch(
            CompressiveImager(config, seed=13), currents, 1
        )
        frames = CompressiveImager(config, seed=13).capture_batch(currents, n_samples=1)
        for frame, reference in zip(frames, expected):
            assert frame.samples.tobytes() == reference.samples.tobytes()
            assert np.array_equal(frame.seed_state, reference.seed_state)
