"""The recovery half of the wire: chunk types 9-10, pinned byte for byte.

The session-durability layer extended the chunk protocol *additively* — two
new chunk type bytes (CONTROL_NACK=9 down the feedback path, SESSION_RESUME=10
up the forward path) with their own payload structs, the frozen v1 chunk
header and types 1-8 untouched.  These tests pin that contract:

* golden blobs for both payloads and for whole chunks (a re-layout breaks
  the hex, not just a round-trip);
* every malformed payload raises the typed
  :class:`~repro.stream.protocol.StreamProtocolError` — never a bare
  ``struct.error`` leaking into a session;
* path discipline: a NACK is feedback-path-only (a strict session raises on
  the forward path, a resilient one counts-and-survives), and a
  SESSION_RESUME needs a resilient receiver (strict raises, resilient
  absorbs it as pure bookkeeping).
"""

import asyncio

import pytest

from repro.stream.protocol import (
    CONTROL_CHUNK_TYPES,
    MAX_NACK_SEQUENCES,
    Chunk,
    ChunkType,
    NackRequest,
    SessionResume,
    StreamProtocolError,
    decode_nack_request,
    decode_session_resume,
    encode_chunk,
    encode_nack_request,
    encode_session_resume,
    encode_stream_header,
    StreamHeader,
)
from repro.stream.session import StreamSession


NACK = NackRequest(frame_index=7, sequences=(3, 9, 12))
RESUME = SessionResume(next_sequence=42, frame_index=6, epoch=2)


def run(coro):
    return asyncio.run(coro)


class InlineScheduler:
    async def submit(self, key, fn):
        future = asyncio.get_running_loop().create_future()
        future.set_result(fn())
        return future


class TestChunkTypeRegistry:
    def test_the_recovery_types_pin_their_bytes(self):
        assert ChunkType.CONTROL_NACK == 9
        assert ChunkType.SESSION_RESUME == 10

    def test_nack_is_a_control_type_and_resume_is_not(self):
        # A NACK flows receiver→node like ACK/rate advice; a resume is a
        # forward-path chunk (node→hub) and must never be treated as control.
        assert ChunkType.CONTROL_NACK in CONTROL_CHUNK_TYPES
        assert ChunkType.SESSION_RESUME not in CONTROL_CHUNK_TYPES

    def test_nack_capacity_is_pinned(self):
        assert MAX_NACK_SEQUENCES == 64


class TestRecoveryGoldenBlobs:
    """The recovery payload layouts, frozen as hex."""

    NACK_HEX = "00000007000300000003000000090000000c"
    RESUME_HEX = "0000002a000000060002"
    NACK_CHUNK_HEX = (
        "cc090003000000090000001200000007000300000003000000090000000c"
    )
    RESUME_CHUNK_HEX = "cc0a00030000000b0000000a0000002a000000060002"

    def test_nack_request_encodes_to_the_golden_bytes(self):
        assert encode_nack_request(NACK).hex() == self.NACK_HEX

    def test_session_resume_encodes_to_the_golden_bytes(self):
        assert encode_session_resume(RESUME).hex() == self.RESUME_HEX

    def test_golden_blobs_decode_back_exactly(self):
        assert decode_nack_request(bytes.fromhex(self.NACK_HEX)) == NACK
        assert decode_session_resume(bytes.fromhex(self.RESUME_HEX)) == RESUME

    def test_whole_recovery_chunks_pin_the_chunk_header_too(self):
        nack_chunk = Chunk(
            chunk_type=ChunkType.CONTROL_NACK,
            stream_id=3,
            sequence=9,
            payload=encode_nack_request(NACK),
        )
        resume_chunk = Chunk(
            chunk_type=ChunkType.SESSION_RESUME,
            stream_id=3,
            sequence=11,
            payload=encode_session_resume(RESUME),
        )
        assert encode_chunk(nack_chunk).hex() == self.NACK_CHUNK_HEX
        assert encode_chunk(resume_chunk).hex() == self.RESUME_CHUNK_HEX


class TestRoundTrips:
    def test_single_sequence_nack_round_trips(self):
        request = NackRequest(frame_index=0, sequences=(17,))
        assert decode_nack_request(encode_nack_request(request)) == request

    def test_full_window_nack_round_trips(self):
        request = NackRequest(
            frame_index=1, sequences=tuple(range(MAX_NACK_SEQUENCES))
        )
        assert decode_nack_request(encode_nack_request(request)) == request

    def test_first_epoch_resume_round_trips(self):
        resume = SessionResume(next_sequence=0, frame_index=0, epoch=1)
        assert decode_session_resume(encode_session_resume(resume)) == resume


class TestMalformedPayloadsRaiseTyped:
    """Every decoder failure is the typed error, never a bare struct.error."""

    def test_empty_nack_refuses_to_encode(self):
        with pytest.raises(StreamProtocolError):
            encode_nack_request(NackRequest(frame_index=0, sequences=()))

    def test_overfull_nack_refuses_to_encode(self):
        sequences = tuple(range(MAX_NACK_SEQUENCES + 1))
        with pytest.raises(StreamProtocolError):
            encode_nack_request(NackRequest(frame_index=0, sequences=sequences))

    def test_truncated_nack_header(self):
        with pytest.raises(StreamProtocolError):
            decode_nack_request(b"\x01\x02\x03")

    def test_nack_announcing_zero_sequences(self):
        payload = bytearray(encode_nack_request(NACK))
        payload[4:6] = b"\x00\x00"
        with pytest.raises(StreamProtocolError):
            decode_nack_request(bytes(payload[:6]))

    def test_nack_count_and_length_must_agree(self):
        payload = encode_nack_request(NACK)
        with pytest.raises(StreamProtocolError):
            decode_nack_request(payload[:-2])  # sequence list cut short
        with pytest.raises(StreamProtocolError):
            decode_nack_request(payload + b"\x00")  # trailing garbage

    def test_truncated_session_resume(self):
        with pytest.raises(StreamProtocolError):
            decode_session_resume(b"\x00" * 4)

    def test_zero_epoch_resume_refuses_both_ways(self):
        with pytest.raises(StreamProtocolError):
            encode_session_resume(
                SessionResume(next_sequence=1, frame_index=0, epoch=0)
            )
        payload = bytearray(encode_session_resume(RESUME))
        payload[-2:] = b"\x00\x00"
        with pytest.raises(StreamProtocolError):
            decode_session_resume(bytes(payload))


class TestPathDiscipline:
    """Recovery chunks arriving on the wrong path or FSM are rejected."""

    def _header_chunk(self):
        header = StreamHeader(
            kind="frame",
            scene_shape=(16, 16),
            tile_shape=(16, 16),
            gop_size=1,
        )
        return Chunk(
            chunk_type=ChunkType.STREAM_START,
            stream_id=1,
            sequence=0,
            payload=encode_stream_header(header),
        )

    async def _feed(self, resilient, chunk):
        session = StreamSession(
            1, InlineScheduler(), resilient=resilient, reconstruct=False
        )
        await session.handle_chunk(self._header_chunk())
        await session.handle_chunk(chunk)
        return session

    def _nack_chunk(self):
        return Chunk(
            chunk_type=ChunkType.CONTROL_NACK,
            stream_id=1,
            sequence=1,
            payload=encode_nack_request(NACK),
        )

    def _resume_chunk(self):
        return Chunk(
            chunk_type=ChunkType.SESSION_RESUME,
            stream_id=1,
            sequence=1,
            payload=encode_session_resume(RESUME),
        )

    def test_nack_on_the_forward_path_raises_strict(self):
        with pytest.raises(StreamProtocolError):
            run(self._feed(False, self._nack_chunk()))

    def test_nack_on_the_forward_path_counts_resilient(self):
        session = run(self._feed(True, self._nack_chunk()))
        assert session.stats.n_corrupt_chunks == 1

    def test_resume_on_a_strict_session_raises(self):
        with pytest.raises(StreamProtocolError):
            run(self._feed(False, self._resume_chunk()))

    def test_resume_on_a_resilient_session_is_absorbed(self):
        session = run(self._feed(True, self._resume_chunk()))
        assert session.stats.n_resumes == 1
        assert session.stats.n_corrupt_chunks == 0
