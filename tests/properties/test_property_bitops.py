"""Property-based tests for the fixed-point helpers."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_width,
    bits_to_int,
    dequantize_from_bits,
    gray_decode,
    gray_encode,
    int_to_bits,
    quantize_to_bits,
    required_accumulator_bits,
    saturate,
    wrap_unsigned,
)


@given(value=st.integers(0, 2**32 - 1))
def test_bit_width_is_tight(value):
    width = bit_width(value)
    assert value < (1 << width)
    if value > 0:
        assert value >= (1 << (width - 1))


@given(value=st.integers(0, 2**20 - 1), n_bits=st.integers(1, 24))
def test_saturate_is_idempotent_and_bounded(value, n_bits):
    once = saturate(value, n_bits)
    assert 0 <= once <= (1 << n_bits) - 1
    assert saturate(once, n_bits) == once


@given(value=st.integers(0, 2**24 - 1), n_bits=st.integers(1, 16))
def test_wrap_unsigned_is_modular(value, n_bits):
    assert wrap_unsigned(value, n_bits) == value % (1 << n_bits)


@given(value=st.integers(0, 2**16 - 1))
def test_bit_serialisation_round_trip(value):
    assert bits_to_int(int_to_bits(value, 16)) == value


@given(value=st.integers(0, 2**20 - 1))
def test_gray_code_round_trip(value):
    assert gray_decode(gray_encode(value)) == value


@given(n_values=st.integers(1, 10_000), value_bits=st.integers(1, 12))
def test_accumulator_bits_are_sufficient_and_tight(n_values, value_bits):
    """Eq. (1) generalised: the returned width holds the worst case, one bit less does not."""
    width = required_accumulator_bits(n_values, value_bits)
    worst_case = n_values * ((1 << value_bits) - 1)
    assert worst_case <= (1 << width) - 1
    if width > 1:
        assert worst_case > (1 << (width - 1)) - 1


@given(
    values=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=50),
    n_bits=st.integers(2, 12),
)
def test_quantization_error_bounded_by_half_lsb(values, n_bits):
    array = np.array(values)
    codes = quantize_to_bits(array, n_bits, 1.0)
    recovered = dequantize_from_bits(codes, n_bits, 1.0)
    assert np.max(np.abs(recovered - array)) <= 0.5 / ((1 << n_bits) - 1) + 1e-12
