"""Integrating photodiode model.

The photodiode of Fig. 1 discharges the pre-charged sense node ``V_pix`` at a
rate proportional to the photocurrent: ``dV/dt = -I_ph / C_pix``.  The model
is intentionally first-order — the paper's argument does not depend on diode
non-linearities — but it keeps the physical parameterisation (capacitance,
reset voltage) so exposure settings map to realistic integration times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class Photodiode:
    """First-order integrating photodiode.

    Attributes
    ----------
    capacitance:
        Sense-node capacitance in farads (pixel capacitance plus diode
        junction capacitance).  ~10 fF for a 22 µm pixel in 0.18 µm CMOS.
    reset_voltage:
        ``V_rst`` — the voltage the node is pre-charged to at global reset.
    """

    capacitance: float = 10.0e-15
    reset_voltage: float = 3.3

    def __post_init__(self) -> None:
        check_positive("capacitance", self.capacitance)
        check_positive("reset_voltage", self.reset_voltage)

    def discharge_rate(self, photocurrent) -> np.ndarray:
        """Node slew rate ``dV/dt`` (V/s, positive number) for a photocurrent (A)."""
        photocurrent = np.asarray(photocurrent, dtype=float)
        if np.any(photocurrent < 0):
            raise ValueError("photocurrent must be non-negative")
        return photocurrent / self.capacitance

    def voltage_at(self, photocurrent, time: float) -> np.ndarray:
        """Node voltage ``V_pix`` after integrating for ``time`` seconds (clipped at 0 V)."""
        check_positive("time", time, allow_zero=True)
        voltage = self.reset_voltage - self.discharge_rate(photocurrent) * time
        return np.clip(voltage, 0.0, self.reset_voltage)

    def crossing_time(self, photocurrent, reference_voltage: float) -> np.ndarray:
        """Time (s) for ``V_pix`` to fall from ``V_rst`` to ``reference_voltage``.

        Pixels with zero photocurrent never cross; the result is ``inf`` for
        those entries, which the time encoder translates into "no event
        within the frame".
        """
        check_positive("reference_voltage", reference_voltage)
        if reference_voltage >= self.reset_voltage:
            raise ValueError(
                f"reference_voltage ({reference_voltage}) must be below "
                f"reset_voltage ({self.reset_voltage})"
            )
        swing = self.reset_voltage - reference_voltage
        rate = self.discharge_rate(photocurrent)
        with np.errstate(divide="ignore"):
            times = np.where(rate > 0.0, swing / np.where(rate > 0.0, rate, 1.0), np.inf)
        return times
