"""The asyncio scrape endpoint, exercised over a real localhost socket."""

import asyncio
import json

from repro.telemetry import MetricsRegistry, parse_prometheus, serve_metrics


def run(coro):
    return asyncio.run(coro)


async def _request(port, request_line):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{request_line}\r\nHost: localhost\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line, *header_lines = head.decode("ascii").split("\r\n")
    headers = dict(
        line.split(": ", 1) for line in header_lines if ": " in line
    )
    return status_line, headers, body


async def _scenario():
    registry = MetricsRegistry()
    registry.counter("repro_frames_total", help="frames").inc(5)
    live = {"value": 0.0}
    gauge = registry.gauge("repro_live")
    registry.register_collector(lambda: gauge.set(live["value"]))
    server, port = await serve_metrics(registry.collect)
    try:
        text_response = await _request(port, "GET /metrics HTTP/1.0")
        json_response = await _request(port, "GET /metrics.json HTTP/1.0")
        live["value"] = 7.0  # collectors must re-run on the next scrape
        fresh_response = await _request(port, "GET /metrics HTTP/1.0")
        missing = await _request(port, "GET /nope HTTP/1.0")
        posted = await _request(port, "POST /metrics HTTP/1.0")
    finally:
        server.close()
        await server.wait_closed()
    return text_response, json_response, fresh_response, missing, posted


class TestScrapeEndpoint:
    def setup_method(self):
        (
            self.text,
            self.json,
            self.fresh,
            self.missing,
            self.posted,
        ) = run(_scenario())

    def test_metrics_route_serves_prometheus_text(self):
        status, headers, body = self.text
        assert "200" in status
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        assert int(headers["Content-Length"]) == len(body)
        parsed = parse_prometheus(body.decode("utf-8"))
        assert parsed[("repro_frames_total", ())] == 5.0

    def test_json_route_serves_the_same_snapshot(self):
        status, headers, body = self.json
        assert "200" in status
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        by_name = {entry["name"]: entry for entry in payload["metrics"]}
        assert by_name["repro_frames_total"]["value"] == 5.0

    def test_each_scrape_collects_fresh_values(self):
        _, _, body = self.fresh
        parsed = parse_prometheus(body.decode("utf-8"))
        assert parsed[("repro_live", ())] == 7.0

    def test_unknown_route_is_404(self):
        status, _, body = self.missing
        assert "404" in status
        assert b"/metrics" in body

    def test_non_get_is_405(self):
        status, _, _ = self.posted
        assert "405" in status
