"""Gate-level model of the Rule 30 cell of Fig. 3.

The paper implements each CA cell with a small static-CMOS gate network whose
logic function is ``NS = L XOR (S OR R)`` — the canonical two-gate form of
Rule 30 — plus a clocked latch holding the cell state.  This module models
that cell at the gate level (explicit OR and XOR evaluation, master/slave
latch update) so the tests can show the hardware cell is bit-for-bit
equivalent to the Wolfram Rule 30 truth table (Table I) and to the vectorised
:class:`~repro.ca.automaton.ElementaryCellularAutomaton` engine.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.utils.rng import SeedLike, nonzero_seed_bits
from repro.utils.validation import check_binary_array


def rule30_next_state(left: int, state: int, right: int) -> int:
    """Rule 30 as the paper's gate network computes it: ``L XOR (S OR R)``."""
    for value, name in ((left, "left"), (state, "state"), (right, "right")):
        if value not in (0, 1):
            raise ValueError(f"{name} must be 0 or 1, got {value}")
    return left ^ (state | right)


class Rule30Cell:
    """A single Rule 30 cell with a two-phase (master/slave) state latch.

    The hardware cell cannot update its output the instant its inputs change;
    it computes the next state combinationally into a master latch and only
    exposes it on the next clock edge.  The two-phase model below mirrors
    that: :meth:`compute` evaluates the gates, :meth:`latch` commits.
    """

    def __init__(self, initial_state: int = 0) -> None:
        if initial_state not in (0, 1):
            raise ValueError(f"initial_state must be 0 or 1, got {initial_state}")
        self._state = int(initial_state)
        self._master: int | None = None

    @property
    def state(self) -> int:
        """Currently latched (slave) state — the selection signal the cell drives."""
        return self._state

    def compute(self, left: int, right: int) -> int:
        """Evaluate the gate network into the master latch and return the value."""
        self._master = rule30_next_state(left, self._state, right)
        return self._master

    def latch(self) -> int:
        """Commit the master value to the slave latch (clock edge)."""
        if self._master is None:
            raise RuntimeError("latch() called before compute(); no value to commit")
        self._state = self._master
        self._master = None
        return self._state

    def reset(self, state: int = 0) -> None:
        """Force the latch to ``state`` (global CA seed load)."""
        if state not in (0, 1):
            raise ValueError(f"state must be 0 or 1, got {state}")
        self._state = int(state)
        self._master = None


class Rule30Register:
    """A closed ring of :class:`Rule30Cell` instances.

    This is the structure drawn around the array in Fig. 2: one cell per row
    plus one per column, all clocked together.  It is intentionally the slow,
    explicit, per-cell model — the production path uses the vectorised
    :class:`~repro.ca.automaton.ElementaryCellularAutomaton`; the register
    exists so the equivalence between the two can be tested.
    """

    def __init__(
        self,
        n_cells: int | None = None,
        *,
        seed_state: Iterable[int] | None = None,
        seed: SeedLike = None,
    ) -> None:
        if seed_state is not None:
            bits = check_binary_array("seed_state", np.array(list(seed_state)))
            if n_cells is not None and bits.size != n_cells:
                raise ValueError(
                    f"seed_state has {bits.size} bits but n_cells is {n_cells}"
                )
            n_cells = bits.size
        elif n_cells is None:
            raise ValueError("either n_cells or seed_state must be provided")
        else:
            bits = nonzero_seed_bits(int(n_cells), seed)
        if n_cells < 3:
            raise ValueError(f"n_cells must be at least 3, got {n_cells}")
        self._cells: list[Rule30Cell] = [Rule30Cell(int(bit)) for bit in bits]
        self._initial = bits.copy()

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def state(self) -> np.ndarray:
        """Current ring contents as a ``uint8`` array."""
        return np.array([cell.state for cell in self._cells], dtype=np.uint8)

    def reset(self, seed_state: Iterable[int] | None = None) -> None:
        """Reload the seed (the original one, or a new one if given)."""
        if seed_state is not None:
            bits = check_binary_array("seed_state", np.array(list(seed_state)))
            if bits.size != len(self._cells):
                raise ValueError(
                    f"seed_state has {bits.size} bits, expected {len(self._cells)}"
                )
            self._initial = bits.copy()
        for cell, bit in zip(self._cells, self._initial):
            cell.reset(int(bit))

    def clock(self, n_cycles: int = 1) -> np.ndarray:
        """Apply ``n_cycles`` clock cycles: compute all cells, then latch all cells.

        The compute-then-latch split is what makes the ring behave as a
        synchronous CA rather than an asynchronous ripple.
        """
        if n_cycles < 0:
            raise ValueError(f"n_cycles must be non-negative, got {n_cycles}")
        n = len(self._cells)
        for _ in range(n_cycles):
            snapshot = [cell.state for cell in self._cells]
            for index, cell in enumerate(self._cells):
                left = snapshot[(index - 1) % n]
                right = snapshot[(index + 1) % n]
                cell.compute(left, right)
            for cell in self._cells:
                cell.latch()
        return self.state

    def run(self, n_cycles: int, *, include_initial: bool = True) -> np.ndarray:
        """Space-time diagram over ``n_cycles`` clock cycles."""
        rows = []
        if include_initial:
            rows.append(self.state)
        for _ in range(n_cycles):
            rows.append(self.clock())
        return np.array(rows, dtype=np.uint8)
