"""E3 — Fig. 1: the elementary pixel.

Regenerates the behaviour the schematic describes: the light-to-time transfer
characteristic of the front end (brighter pixels fire earlier, reciprocal
curve), the XOR selection gating, the fire-once activation latch, and the
event-termination handshake, and benchmarks the vectorised light-to-time
conversion of a full 64x64 array.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.pixel.comparator import Comparator
from repro.pixel.event import EventLatch
from repro.pixel.photodiode import Photodiode
from repro.pixel.pixel import Pixel
from repro.pixel.time_encoder import TimeEncoder


def ideal_encoder():
    return TimeEncoder(
        photodiode=Photodiode(capacitance=10e-15, reset_voltage=3.3),
        comparator=Comparator(offset_sigma=0.0, delay=0.0),
        reference_voltage=1.0,
    )


def test_fig1_light_to_time_transfer_curve(benchmark):
    """The pixel encodes intensity in time: t = (V_rst - V_ref) C / I_ph."""
    encoder = ideal_encoder()
    currents = np.logspace(-10, -8, 9)

    times = benchmark(encoder.ideal_firing_times, currents.reshape(1, -1))[0]

    rows = [
        {"photocurrent_nA": current * 1e9, "firing_time_us": time * 1e6}
        for current, time in zip(currents, times)
    ]
    print_table("Fig. 1 — light-to-time transfer curve", rows)
    # Reciprocal curve: t * I is constant and equals swing * C.
    products = times * currents
    assert np.allclose(products, encoder.voltage_swing * encoder.photodiode.capacitance)
    # Monotonically decreasing with light.
    assert np.all(np.diff(times) < 0)


def test_fig1_full_array_conversion_throughput(benchmark):
    """Vectorised conversion of all 4096 pixels (the per-sample inner loop)."""
    encoder = ideal_encoder()
    rng = np.random.default_rng(0)
    currents = rng.uniform(1e-9, 10e-9, size=(64, 64))
    times = benchmark(encoder.firing_times, currents)
    assert times.shape == (64, 64)


def test_fig1_selection_and_event_logic(benchmark):
    """XOR gating, fire-once latch and termination — the digital half of Fig. 1."""

    def run_pixel_protocol():
        pixel = Pixel(row=3, col=5, encoder=ideal_encoder())
        pixel.expose(2e-9)
        outcomes = {}
        # Deselected: S_i == S_j — the activation front must not propagate.
        pixel.select(1, 1)
        outcomes["deselected_event"] = pixel.maybe_activate(1.0)
        # Selected: the pixel activates exactly once.
        pixel.select(0, 1)
        first = pixel.maybe_activate(1.0)
        second = pixel.maybe_activate(1.0)
        outcomes["selected_event"] = first
        outcomes["second_event"] = second
        # Event termination handshake on the latch.
        latch = EventLatch()
        latch.activate()
        latch.grant()
        latch.terminate()
        outcomes["latch_completed"] = latch.completed
        return outcomes

    outcomes = benchmark(run_pixel_protocol)
    assert outcomes["deselected_event"] is None
    assert outcomes["selected_event"] is not None
    assert outcomes["second_event"] is None
    assert outcomes["latch_completed"] is True
