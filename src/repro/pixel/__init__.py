"""Behavioural model of the elementary pixel of Fig. 1.

The pixel is modelled block-by-block, mirroring the boxes drawn in the
schematic:

* :mod:`repro.pixel.photodiode` — the integrating photodiode that discharges
  the sense node ``V_pix`` at a rate set by the photocurrent.
* :mod:`repro.pixel.comparator` — the voltage comparator (with offset and
  the MiM-capacitor auto-zeroing scheme) whose flip on ``V_pix`` crossing
  ``V_ref`` defines the time-encoded pixel value ``V_1``.
* :mod:`repro.pixel.time_encoder` — combines the two into the light-to-time
  transfer characteristic, including the on-line adjustable ``V_rst`` and
  ``V_ref`` used to adapt to illumination conditions.
* :mod:`repro.pixel.selection` — the 6-transistor XOR selection unit (``V_2``)
  that gates the activation front when the pixel is not part of the current
  compressed sample.
* :mod:`repro.pixel.event` — the activation latch and pulse generation logic
  (``V_3``/``V_4``/``V_5``), the per-pixel half of the event protocol.
* :mod:`repro.pixel.pixel` — the assembled :class:`Pixel`, the unit the
  sensor-level simulator instantiates 64x64 times.
"""

from repro.pixel.comparator import Comparator
from repro.pixel.event import EventLatch, PixelEvent
from repro.pixel.photodiode import Photodiode
from repro.pixel.pixel import Pixel
from repro.pixel.selection import xor_select
from repro.pixel.time_encoder import TimeEncoder

__all__ = [
    "Photodiode",
    "Comparator",
    "TimeEncoder",
    "EventLatch",
    "PixelEvent",
    "Pixel",
    "xor_select",
]
