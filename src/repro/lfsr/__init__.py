"""Linear-feedback shift registers.

LFSRs are the most common on-chip pseudo-random generators used for
compressive-sampling measurement matrices (the paper cites [13][14] as the
alternative it argues against).  This package provides Fibonacci and Galois
LFSRs plus a table of primitive polynomials, so the benchmarks can compare
the paper's Rule 30 CA strategy against an LFSR-generated Φ of the same cost.
"""

from repro.lfsr.lfsr import FibonacciLFSR, GaloisLFSR, LFSRSelectionGenerator
from repro.lfsr.polynomials import PRIMITIVE_POLYNOMIALS, primitive_taps

__all__ = [
    "FibonacciLFSR",
    "GaloisLFSR",
    "LFSRSelectionGenerator",
    "PRIMITIVE_POLYNOMIALS",
    "primitive_taps",
]
