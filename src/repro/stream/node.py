"""The autonomous camera node: capture in workers, chunks on the wire.

This is the paper's motivating system turned into a service: a node that
captures compressively at the focal plane and "delivers images over a network
under a restricted data rate", shipping compressed samples plus only the
128-bit CA seed.  :class:`CameraNode` drives any of the repo's capture
engines — a single :class:`~repro.sensor.imager.CompressiveImager`, a
:class:`~repro.sensor.video.VideoSequencer`, or a whole
:class:`~repro.sensor.shard.TiledSensorArray` mosaic — through a worker
executor (capture is numpy/BLAS work; the event loop only moves bytes),
encodes each result as v2 wire chunks and sends them over any transport from
:mod:`repro.stream.transport`.

Two flow-control mechanisms compose:

* **Backpressure** — every ``transport.send`` is awaited, so a bounded
  channel (full loopback queue, full TCP socket buffer) suspends the node's
  capture loop.  Buffering is bounded by the transport, never by the node.
* **Bit-rate governor** — :class:`BitrateGovernor` fits each frame's sample
  count to a bits-per-frame channel budget *before* capturing (fewer samples
  = fewer bits = graceful quality degradation), exactly the sweep
  ``examples/camera_node_streaming.py`` demonstrates.  Seed-once GOPs lower
  the per-frame overhead the governor has to charge.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
from concurrent.futures import Executor
from dataclasses import dataclass, field
from collections.abc import Awaitable, Callable, Iterable
from typing import Any, TypeVar, cast

import numpy as np

from repro.io.framing import encode_frame, frame_overhead_bits
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame, CompressiveImager
from repro.sensor.shard import TiledSensorArray
from repro.sensor.video import VideoSequencer
from repro.stream.protocol import (
    Chunk,
    ChunkType,
    FrameData,
    StreamHeader,
    encode_chunk,
    encode_frame_complete,
    encode_frame_data,
    encode_stream_end,
    encode_stream_header,
)
from repro.stream.transport import Transport
from repro.utils.validation import check_positive


class ChannelBudgetError(ValueError):
    """The per-frame bit budget cannot fit even one compressed sample."""


#: Wire cost of wrapping one frame as a chunk: the 12-byte chunk header plus
#: the 9-byte frame-data prefix (frame index, grid position, keyframe flag).
CHUNK_OVERHEAD_BITS = (12 + 9) * 8


_StreamMethod = TypeVar("_StreamMethod", bound=Callable[..., Awaitable[Any]])


def _close_on_error(method: _StreamMethod) -> _StreamMethod:
    """Close the transport when a stream method dies mid-stream.

    A capture-side failure (governor rejection, bad scene shape, solver
    error) must not strand the peer: closing the channel turns the
    receiver's blocking ``recv`` into end-of-stream, so it raises its own
    "transport closed before the stream-end chunk" protocol error instead of
    waiting forever on a stream that will never finish — and the node's
    exception still propagates to whoever awaits the stream task.
    """

    @functools.wraps(method)
    async def wrapper(self: CameraNode, *args: Any, **kwargs: Any) -> Any:
        try:
            return await method(self, *args, **kwargs)
        except BaseException:
            with contextlib.suppress(Exception):
                await self.transport.close()
            raise

    return cast("_StreamMethod", wrapper)


@dataclass
class BitrateGovernor:
    """Fits each frame's sample count to a bits-per-frame channel budget.

    Parameters
    ----------
    bits_per_frame:
        Channel budget for one frame, headers and seed included.  ``None``
        disables governing (the configured sample count is used as-is).
    min_samples:
        Floor below which the governor refuses to degrade and raises
        :class:`ChannelBudgetError` instead — a frame with almost no samples
        reconstructs to noise, and a node should fail loudly rather than
        stream garbage.
    """

    bits_per_frame: int | None = None
    min_samples: int = 1

    def __post_init__(self) -> None:
        if self.bits_per_frame is not None:
            check_positive("bits_per_frame", self.bits_per_frame)
        check_positive("min_samples", self.min_samples)

    def samples_for_frame(
        self,
        config: SensorConfig,
        *,
        max_samples: int | None = None,
        include_seed: bool = True,
    ) -> int:
        """Samples that fit the budget after the frame overhead is charged.

        ``include_seed=False`` models a non-keyframe of a GOP, whose seed
        bits the channel never pays — the governor then fits more samples
        into the same budget.
        """
        if max_samples is None:
            max_samples = config.samples_per_frame
        if self.bits_per_frame is None:
            return int(max_samples)
        overhead = CHUNK_OVERHEAD_BITS + frame_overhead_bits(
            config, version=2, include_seed=include_seed
        )
        usable = self.bits_per_frame - overhead
        n_samples = min(int(max_samples), usable // config.compressed_sample_bits)
        if n_samples < self.min_samples:
            raise ChannelBudgetError(
                f"budget of {self.bits_per_frame} bits leaves room for "
                f"{max(0, n_samples)} samples (< min_samples={self.min_samples})"
            )
        return int(n_samples)

    def ratio_for_frame(
        self,
        config: SensorConfig,
        n_pixels: int,
        *,
        n_tiles: int = 1,
        include_seed: bool = True,
    ) -> float | None:
        """Per-tile compression-ratio override fitting a tiled frame's budget.

        A mosaic frame pays the per-frame overhead once per tile; the
        remaining bits spread over ``n_pixels`` scene pixels give the ratio
        handed to :meth:`TiledSensorArray.capture
        <repro.sensor.shard.TiledSensorArray.capture>`.  Returns ``None``
        when ungoverned.
        """
        if self.bits_per_frame is None:
            return None
        overhead = n_tiles * (
            CHUNK_OVERHEAD_BITS
            + frame_overhead_bits(config, version=2, include_seed=include_seed)
        )
        usable = self.bits_per_frame - overhead
        n_samples = usable // config.compressed_sample_bits
        if n_samples < self.min_samples * n_tiles:
            raise ChannelBudgetError(
                f"budget of {self.bits_per_frame} bits leaves room for "
                f"{max(0, n_samples)} samples over {n_tiles} tiles"
            )
        # A generous budget never *upgrades* the capture beyond its
        # configured ratio — the budget is a ceiling, not a target.
        return min(0.999, config.compression_ratio, float(n_samples) / float(n_pixels))


@dataclass
class StreamStats:
    """What one streaming run put on the wire."""

    n_frames: int = 0
    n_chunks: int = 0
    n_bytes: int = 0
    samples_per_frame: list[int] = field(default_factory=list)
    #: Wire bytes of each frame's data chunks (excluding the one-time
    #: stream-start/stream-end bookends) — what a per-frame budget governs.
    bytes_per_frame: list[int] = field(default_factory=list)


class CameraNode:
    """An asyncio camera node streaming captures over a transport.

    Parameters
    ----------
    transport:
        Any transport from :mod:`repro.stream.transport` (loopback, TCP).
    stream_id:
        Identifier stamped into every chunk header.
    governor:
        Optional :class:`BitrateGovernor`; when omitted the node streams at
        the capture engine's configured sample budget.
    gop_size:
        Frames per group-of-pictures for the video modes: the CA seed is
        carried by each GOP's first frame only, later frames are seedless
        and the receiver re-derives their seeds from the one-pattern frame
        overlap.  ``1`` makes every frame a keyframe.
    executor:
        ``concurrent.futures`` executor for the capture work; ``None`` uses
        the event loop's default thread pool.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        stream_id: int = 1,
        governor: BitrateGovernor | None = None,
        gop_size: int = 4,
        executor: Executor | None = None,
    ) -> None:
        check_positive("gop_size", gop_size)
        self.transport = transport
        self.stream_id = int(stream_id)
        self.governor = governor or BitrateGovernor()
        self.gop_size = int(gop_size)
        self.executor = executor
        self._sequence = 0

    # -------------------------------------------------------------- helpers
    async def _run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run blocking capture work on the worker executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    async def _send_chunk(
        self, chunk_type: ChunkType, payload: bytes, stats: StreamStats
    ) -> int:
        """Frame one chunk and push it through the transport (may stall)."""
        chunk = Chunk(
            chunk_type=chunk_type,
            stream_id=self.stream_id,
            sequence=self._sequence,
            payload=payload,
        )
        self._sequence += 1
        data = encode_chunk(chunk)
        await self.transport.send(data)
        stats.n_chunks += 1
        stats.n_bytes += len(data)
        return len(data)

    async def _send_header(self, header: StreamHeader, stats: StreamStats) -> None:
        # Every stream opens with its header chunk at sequence 0, so a node
        # can be reused across transports/streams without desynchronising
        # receivers (which expect consecutive sequences from 0).
        self._sequence = 0
        await self._send_chunk(
            ChunkType.STREAM_START, encode_stream_header(header), stats
        )

    async def _send_frame(
        self,
        frame: CompressedFrame,
        stats: StreamStats,
        *,
        frame_index: int,
        grid_row: int = 0,
        grid_col: int = 0,
        keyframe: bool = True,
    ) -> int:
        frame_bytes = encode_frame(frame, version=2, include_seed=keyframe)
        payload = encode_frame_data(
            FrameData(
                frame_index=frame_index,
                grid_row=grid_row,
                grid_col=grid_col,
                keyframe=keyframe,
                frame_bytes=frame_bytes,
            )
        )
        return await self._send_chunk(ChunkType.FRAME_DATA, payload, stats)

    async def _finish(self, stats: StreamStats) -> StreamStats:
        await self._send_chunk(
            ChunkType.STREAM_END, encode_stream_end(stats.n_frames), stats
        )
        await self.transport.close()
        return stats

    # ---------------------------------------------------------- single chip
    @_close_on_error
    async def stream_frames(
        self,
        imager: CompressiveImager,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream independent frames from one imager (every frame a keyframe).

        Each scene is captured via
        :meth:`~repro.sensor.imager.CompressiveImager.capture_scene` on the
        worker executor, encoded as a self-contained v2 frame (seed included)
        and sent.  The governor, when budgeted, fits each frame's sample
        count to the channel.
        """
        config = imager.config
        stats = StreamStats()
        header = StreamHeader(
            kind="frame",
            scene_shape=(config.rows, config.cols),
            tile_shape=(config.rows, config.cols),
            gop_size=1,
        )
        await self._send_header(header, stats)
        for index, scene in enumerate(scenes):
            n_samples = self.governor.samples_for_frame(config)
            frame = await self._run(
                lambda s=scene, n=n_samples: imager.capture_scene(
                    s, n_samples=n, fidelity=fidelity, **capture_kwargs
                )
            )
            sent = await self._send_frame(frame, stats, frame_index=index)
            stats.n_frames += 1
            stats.samples_per_frame.append(frame.n_samples)
            stats.bytes_per_frame.append(sent)
        return await self._finish(stats)

    # --------------------------------------------------------------- video
    @_close_on_error
    async def stream_video(
        self,
        sequencer: VideoSequencer,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream a video sequence with seed-once GOPs.

        Frames come from
        :meth:`~repro.sensor.video.VideoSequencer.stream_frames` — the lazy
        capture path whose CA free-runs across frames — so only each GOP's
        keyframe carries the seed; the receiver re-derives every other seed
        from the one-pattern frame overlap
        (:func:`repro.stream.protocol.advance_seed_state`).
        """
        config = sequencer.imager.config
        stats = StreamStats()
        header = StreamHeader(
            kind="video",
            scene_shape=(config.rows, config.cols),
            tile_shape=(config.rows, config.cols),
            gop_size=self.gop_size,
        )
        await self._send_header(header, stats)
        # The governor must fix one sample count per GOP: seed re-derivation
        # needs every chained frame's advance to be announced in its header,
        # and a keyframe budget must also fit its seed bits.
        n_samples = self.governor.samples_for_frame(
            config, max_samples=sequencer.samples_per_frame, include_seed=True
        )
        iterator = iter(
            sequencer.stream_frames(
                scenes,
                fidelity=fidelity,
                samples_for_frame=lambda index: n_samples,
                **capture_kwargs,
            )
        )
        sentinel = object()
        index = 0
        while True:
            frame = await self._run(next, iterator, sentinel)
            if frame is sentinel:
                break
            keyframe = index % self.gop_size == 0
            sent = await self._send_frame(
                frame, stats, frame_index=index, keyframe=keyframe
            )
            stats.n_frames += 1
            stats.samples_per_frame.append(frame.n_samples)
            stats.bytes_per_frame.append(sent)
            index += 1
        return await self._finish(stats)

    # --------------------------------------------------------------- tiled
    @_close_on_error
    async def stream_tiled(
        self,
        array: TiledSensorArray,
        photocurrent: np.ndarray,
        *,
        fidelity: str = "behavioural",
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream one mosaic frame, tile chunks flowing as tiles finish.

        Tiles come from
        :meth:`~repro.sensor.shard.TiledSensorArray.iter_capture`: tile
        ``(0, 0)`` is encoded and on the wire while the executor is still
        capturing the rest of the mosaic.  Every tile is self-contained
        (own seed); a ``FRAME_COMPLETE`` barrier closes the frame.
        """
        stats = StreamStats()
        header = StreamHeader(
            kind="tiled",
            scene_shape=array.scene_shape,
            tile_shape=array.tile_shape,
            gop_size=1,
        )
        await self._send_header(header, stats)
        ratio = self.governor.ratio_for_frame(
            array.imagers[0][0].config,
            array.scene_shape[0] * array.scene_shape[1],
            n_tiles=array.n_tiles,
        )
        iterator = array.iter_capture(
            photocurrent,
            fidelity=fidelity,
            compression_ratio=ratio,
            **capture_kwargs,
        )
        sentinel = object()
        total_samples = 0
        frame_bytes = 0
        while True:
            pair = await self._run(next, iterator, sentinel)
            if pair is sentinel:
                break
            slot, frame = pair
            frame_bytes += await self._send_frame(
                frame,
                stats,
                frame_index=0,
                grid_row=slot.grid_row,
                grid_col=slot.grid_col,
            )
            total_samples += frame.n_samples
        frame_bytes += await self._send_chunk(
            ChunkType.FRAME_COMPLETE, encode_frame_complete(0, array.n_tiles), stats
        )
        stats.n_frames = 1
        stats.samples_per_frame.append(total_samples)
        stats.bytes_per_frame.append(frame_bytes)
        return await self._finish(stats)

    @_close_on_error
    async def stream_tiled_video(
        self,
        array: TiledSensorArray,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        photocurrents: bool = False,
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream a tiled video sequence, GOP by GOP, seed-once per tile.

        Scenes are consumed in groups of ``gop_size``; each GOP is captured
        through
        :meth:`~repro.sensor.shard.TiledSensorArray.capture_sequence` with
        ``advance=True`` (every tile's CA free-runs across GOP boundaries),
        then emitted frame by frame: one ``FRAME_DATA`` chunk per tile —
        seeds riding only on the GOP's first frame — and one
        ``FRAME_COMPLETE`` barrier per frame.  ``photocurrents=True`` treats
        ``scenes`` as photocurrent maps instead of normalised scenes.
        """
        stats = StreamStats()
        header = StreamHeader(
            kind="tiled-video",
            scene_shape=array.scene_shape,
            tile_shape=array.tile_shape,
            gop_size=self.gop_size,
        )
        await self._send_header(header, stats)
        ratio = self.governor.ratio_for_frame(
            array.imagers[0][0].config,
            array.scene_shape[0] * array.scene_shape[1],
            n_tiles=array.n_tiles,
        )
        frame_index = 0
        iterator = iter(scenes)
        while True:
            gop = []
            for _ in range(self.gop_size):
                try:
                    gop.append(next(iterator))
                except StopIteration:
                    break
            if not gop:
                break
            capture = (
                array.capture_sequence if photocurrents else array.capture_scene_sequence
            )
            results = await self._run(
                lambda g=gop: capture(
                    g,
                    fidelity=fidelity,
                    compression_ratio=ratio,
                    advance=True,
                    **capture_kwargs,
                )
            )
            for gop_offset, result in enumerate(results):
                keyframe = gop_offset == 0
                frame_bytes = 0
                for slot, frame in result.frames():
                    frame_bytes += await self._send_frame(
                        frame,
                        stats,
                        frame_index=frame_index,
                        grid_row=slot.grid_row,
                        grid_col=slot.grid_col,
                        keyframe=keyframe,
                    )
                frame_bytes += await self._send_chunk(
                    ChunkType.FRAME_COMPLETE,
                    encode_frame_complete(frame_index, array.n_tiles),
                    stats,
                )
                stats.n_frames += 1
                stats.samples_per_frame.append(result.n_samples)
                stats.bytes_per_frame.append(frame_bytes)
                frame_index += 1
        return await self._finish(stats)
