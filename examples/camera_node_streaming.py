"""Autonomous camera node streaming over a restricted data rate.

The paper's introduction motivates focal-plane compressive sampling with an
autonomous camera node that must "deliver images over a network under a
restricted data rate and still receive enough meaningful information", without
the memory and processing cost of digitising the full image and compressing it
afterwards.

This example runs that node as an actual service on the :mod:`repro.stream`
subsystem: for each channel budget, a :class:`~repro.stream.CameraNode` with a
:class:`~repro.stream.BitrateGovernor` captures the scene in a worker thread,
fits the compressed-sample count to the budget, and streams v2 wire chunks
over an in-memory loopback transport to a :class:`~repro.stream.StreamReceiver`
that decodes and reconstructs on the other side.  The sweep shows the same
graceful quality/rate trade-off the pre-streaming version of this example
reported — but every bit now actually crosses a (simulated) wire, headers and
CA seed included.

Run:  python examples/camera_node_streaming.py
"""

import asyncio

from repro import (
    BitrateGovernor,
    CameraNode,
    CompressiveImager,
    LoopbackTransport,
    SensorConfig,
    StreamReceiver,
    make_scene,
    psnr,
)


def stream_frame(imager, scene, bit_budget):
    """Capture and transmit one frame under the given channel budget."""

    async def scenario():
        transport = LoopbackTransport(max_buffered=4)
        node = CameraNode(
            transport, governor=BitrateGovernor(bits_per_frame=bit_budget)
        )
        receiver = StreamReceiver(max_iterations=150)
        # gather runs both ends concurrently and surfaces the *first* failure
        # (e.g. a ChannelBudgetError from the node) rather than the generic
        # closed-channel error the receiver raises as a consequence.
        stats, result = await asyncio.gather(
            node.stream_frames(imager, [scene]), receiver.run(transport)
        )
        return result, stats

    result, stats = asyncio.run(scenario())
    received = result.frames[0]
    reference = imager.capture_scene(
        scene, n_samples=received.capture.n_samples
    ).digital_image.astype(float)
    return {
        "bit_budget": bit_budget,
        "n_samples": received.capture.n_samples,
        "ratio": received.capture.compression_ratio,
        # Wire bytes of the frame's data chunk — header, seed, statistics
        # block and chunk framing included; the governor fit all of it.
        "bits_used": stats.bytes_per_frame[0] * 8,
        "psnr_db": psnr(reference, received.reconstruction.image),
    }


def main() -> None:
    config = SensorConfig()
    imager = CompressiveImager(config, seed=7)
    scene = make_scene("natural", (config.rows, config.cols), seed=5)

    raw_bits = config.n_pixels * config.pixel_bits
    print(f"Raw read-out of one frame: {raw_bits} bits")
    print(f"Side information per frame: {config.rows + config.cols} bits (the CA seed)")
    print(f"If Phi itself had to be transmitted instead: "
          f"{config.samples_per_frame * config.n_pixels} bits\n")

    print(f"{'budget (bits)':>14} {'samples':>8} {'R':>6} {'bits used':>10} {'PSNR (dB)':>10}")
    for fraction in (0.08, 0.15, 0.25, 0.35):
        budget = int(fraction * raw_bits)
        row = stream_frame(imager, scene, budget)
        print(
            f"{row['bit_budget']:>14} {row['n_samples']:>8} {row['ratio']:>6.2f} "
            f"{row['bits_used']:>10} {row['psnr_db']:>10.2f}"
        )

    print(
        "\nQuality degrades gracefully as the channel shrinks; the node never needs "
        "to store or transmit the measurement matrix, only the CA seed."
    )


if __name__ == "__main__":
    main()
