"""The assembled elementary pixel.

:class:`Pixel` ties together the light-to-time front end (photodiode +
comparator), the XOR selection unit and the event latch into the behavioural
unit that the array-level simulator instantiates.  For array-scale work the
sensor model uses the vectorised :class:`~repro.pixel.time_encoder.TimeEncoder`
directly (one call for all 4096 pixels); the per-object :class:`Pixel` exists
for unit tests, for the Fig. 1 benchmark and for small step-by-step examples
where following a single pixel through a frame is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pixel.event import EventLatch, PixelEvent
from repro.pixel.selection import v2_output, xor_select
from repro.pixel.time_encoder import TimeEncoder
from repro.utils.validation import check_positive


@dataclass
class Pixel:
    """Behavioural model of one pixel of the array.

    Attributes
    ----------
    row, col:
        Position in the array (also reported in the events it emits).
    encoder:
        The light-to-time conversion chain for this pixel.
    latch:
        The event-generation state machine.
    """

    row: int
    col: int
    encoder: TimeEncoder = field(default_factory=TimeEncoder)
    latch: EventLatch = field(default_factory=EventLatch)
    _photocurrent: float = field(default=0.0, repr=False)
    _fire_time: float | None = field(default=None, repr=False)
    _selected: bool = field(default=False, repr=False)

    def reset(self) -> None:
        """Global reset: pre-charge the sense node and clear the event latch."""
        self.latch.reset()
        self._fire_time = None

    # -------------------------------------------------------------- exposure
    def expose(self, photocurrent: float) -> float:
        """Set the photocurrent for this frame and compute the firing time.

        Returns the firing time (s); ``inf`` if the pixel never reaches the
        threshold.
        """
        check_positive("photocurrent", photocurrent, allow_zero=True)
        self._photocurrent = float(photocurrent)
        times = self.encoder.firing_times(
            np.array([[self._photocurrent]]), include_offset=False, include_delay=False
        )
        self._fire_time = float(times[0, 0])
        return self._fire_time

    @property
    def fire_time(self) -> float | None:
        """Firing time computed by the last :meth:`expose` call."""
        return self._fire_time

    # ------------------------------------------------------------- selection
    def select(self, row_signal: int, col_signal: int) -> bool:
        """Apply the row/column selection signals; returns the XOR decision."""
        self._selected = bool(xor_select(row_signal, col_signal))
        return self._selected

    @property
    def selected(self) -> bool:
        """Whether the pixel participates in the current compressed sample."""
        return self._selected

    def v2(self, v1: int, row_signal: int, col_signal: int) -> int:
        """Logic level at node ``V_2`` for explicit gate-level tests."""
        return v2_output(v1, row_signal, col_signal)

    # ----------------------------------------------------------------- event
    def maybe_activate(self, now: float) -> PixelEvent | None:
        """Activate the event latch if the comparator has flipped by time ``now``.

        Returns a :class:`PixelEvent` the first time the activation happens
        (for a selected pixel); ``None`` otherwise.  Deselected pixels never
        activate — the XOR gate blocks the front before the latch, which is
        exactly the power-saving structure of Fig. 1.
        """
        if not self._selected:
            return None
        if self._fire_time is None or now < self._fire_time:
            return None
        if self.latch.activate():
            return PixelEvent(self.row, self.col, self._fire_time)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Pixel(row={self.row}, col={self.col}, selected={self._selected}, "
            f"fire_time={self._fire_time})"
        )
