"""Property-based tests for the sparsifying dictionaries and metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cs.dictionaries import DCT2Dictionary, Haar2Dictionary, IdentityDictionary
from repro.cs.metrics import nmse, psnr

image_shapes = st.sampled_from([(4, 4), (8, 8), (16, 16), (8, 16)])
power_of_two_shapes = st.sampled_from([(4, 4), (8, 8), (16, 16)])


def finite_images(shape):
    return arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
    )


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=image_shapes)
def test_dct_is_an_isometry(data, shape):
    image = data.draw(finite_images(shape))
    dictionary = DCT2Dictionary(shape)
    coefficients = dictionary.analyze(image.reshape(-1))
    assert np.isclose(np.linalg.norm(coefficients), np.linalg.norm(image), atol=1e-8)
    recovered = dictionary.synthesize(coefficients)
    assert np.allclose(recovered, image.reshape(-1), atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=power_of_two_shapes)
def test_haar_is_an_isometry(data, shape):
    image = data.draw(finite_images(shape))
    dictionary = Haar2Dictionary(shape)
    coefficients = dictionary.analyze(image.reshape(-1))
    assert np.isclose(np.linalg.norm(coefficients), np.linalg.norm(image), atol=1e-8)
    recovered = dictionary.synthesize(coefficients)
    assert np.allclose(recovered, image.reshape(-1), atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), shape=power_of_two_shapes)
def test_identity_round_trip(data, shape):
    image = data.draw(finite_images(shape))
    dictionary = IdentityDictionary(shape)
    assert np.array_equal(
        dictionary.synthesize(dictionary.analyze(image.reshape(-1))), image.reshape(-1)
    )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_psnr_nonincreasing_in_added_noise(data):
    image = data.draw(finite_images((8, 8)))
    noise = data.draw(finite_images((8, 8)))
    if np.allclose(noise, 0.0):
        return
    reference = image
    small = image + 0.1 * noise
    large = image + noise
    assert psnr(reference, small) >= psnr(reference, large) - 1e-9


@settings(max_examples=25, deadline=None)
@given(data=st.data(), scale=st.floats(0.1, 10.0))
def test_nmse_is_scale_invariant(data, scale):
    image = data.draw(finite_images((8, 8)))
    estimate = data.draw(finite_images((8, 8)))
    if np.allclose(image, 0.0):
        return
    assert np.isclose(nmse(image, estimate), nmse(scale * image, scale * estimate), rtol=1e-6)
