"""Top-level compressive imager: scene in, compressed samples out.

:class:`CompressiveImager` wires together every block described in the paper:
the time-encoding pixel array (Section II-A), the Rule 30 selection CA
(II-B / III-A), the column bus token protocol (II-E), the global-counter TDC
and the sample-and-add chain (III-B).  Two fidelity levels are offered:

* ``"behavioural"`` — batched: pixel codes are quantised firing times and a
  whole frame is captured as one CA-matrix build plus one matmul,
  ``samples = Φ @ codes``, with the ±1 LSB late-detection error injected by a
  single vectorised draw over every selected event in the frame.  This
  mirrors the paper's architecture directly — Φ is generated concurrently
  with sampling and each sample is a plain masked sum (Section II) — and it
  is exact whenever no two events of a column collide.  The batched engine
  is bit-identical to the per-pattern loop it replaced (the capture
  equivalence regression tests pin this) while being an order of magnitude
  faster, and :meth:`CompressiveImager.capture_batch` extends it to stacks
  of frames that share one CA evolution, as the 30 fps hardware does.
* ``"event"`` — event-accurate and *also* batched: the paper's column-bus
  arbitration (token protocol, collision queueing, deadline losses) is
  resolved column-parallel.  The firing times of every column are sorted
  once per frame, the bus-emission instants of **all** sample x column
  instances are produced by one vectorised single-server recurrence
  (:func:`~repro.sensor.column_bus.arbitrate_columns`), the TDC samples the
  counter at those instants in one pass and the per-column code sums are
  folded through the batched Sample & Add
  (:func:`~repro.sensor.sample_add.fold_column_sums`) with the same Eq. (1)
  bit-width discipline.  Rare collision pools of three or more events —
  where the topmost-first release rule can reorder pixels — are re-run
  through the scalar :class:`~repro.sensor.column_bus.ColumnBusArbiter`,
  which stays in place as the executable specification: the batched engine
  is event-for-event identical to the per-column loop it replaced
  (samples, lost/queued counts and LSB errors are pinned by
  ``tests/sensor/test_event_equivalence.py``), and ``engine="reference"``
  still runs that loop for verification.  This is the mode the
  token-protocol and timing-error benchmarks use.

Both fidelity levels batch across frames too: :meth:`CompressiveImager.capture_batch`
captures whole sequences through one shared CA evolution, as the 30 fps
hardware does.  The output :class:`CompressedFrame` carries the CA seed — the
only side information a receiver needs to rebuild Φ and reconstruct the
image, which is the central selling point of the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ca.selection import CASelectionGenerator, selection_masks_from_states
from repro.pixel.event import PixelEvent
from repro.pixel.time_encoder import TimeEncoder, column_event_order
from repro.sensor.column_bus import ColumnBusArbiter, arbitrate_columns
from repro.sensor.config import SensorConfig
from repro.sensor.sample_add import SampleAndAdd, fold_column_sums
from repro.sensor.tdc import GlobalCounterTDC, draw_lsb_bumps
from repro.utils.rng import SeedLike, derive_seed, new_rng
from repro.utils.validation import check_choice, check_positive

#: Accuracy contract of the ``dtype="float32"`` behavioural fast mode, in
#: compressed-sample code units.  With ``lsb_error=False`` a float32 capture
#: is pinned to within this absolute tolerance of the float64 capture (for
#: tiles up to 128x128 the float32 matmul is in fact exact: every partial sum
#: stays below 2**24, the largest integer float32 resolves).  With
#: ``lsb_error=True`` the fast mode replaces the per-event stochastic ±1 LSB
#: draws with their expectation, so the two dtypes additionally differ by the
#: binomial noise of the exact path — bounded (at six sigma) by
#: ``6 * sqrt(n_selected_events_per_sample * p * (1 - p))``.
#: ``tests/sensor/test_float32_mode.py`` pins both halves of this contract.
FLOAT32_SAMPLE_ATOL = 2.0


@dataclass
class CompressedFrame:
    """The output of one compressive capture.

    Attributes
    ----------
    samples:
        The compressed samples, one integer per selection pattern.
    seed_state:
        The CA seed — the side information shared with the receiver.
    rule_number, steps_per_sample, warmup_steps:
        CA parameters needed (together with the seed) to rebuild Φ.
    config:
        The sensor configuration the frame was captured with.
    digital_image:
        The ideal per-pixel TDC codes (the image the compressed samples are
        linear combinations of); kept for ground-truth comparisons.
    metadata:
        Capture statistics (lost events, queueing, LSB errors, fidelity).
    """

    samples: np.ndarray
    seed_state: np.ndarray
    rule_number: int
    steps_per_sample: int
    warmup_steps: int
    config: SensorConfig
    digital_image: np.ndarray | None = None
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        """Number of compressed samples in the frame."""
        return int(self.samples.size)

    @property
    def compression_ratio(self) -> float:
        """Delivered samples divided by the number of pixels."""
        return self.n_samples / self.config.n_pixels

    @property
    def compressed_bits(self) -> int:
        """Bits needed to transmit the compressed samples."""
        return self.n_samples * self.config.compressed_sample_bits

    @property
    def raw_bits(self) -> int:
        """Bits needed to transmit the uncompressed digital image."""
        return self.config.n_pixels * self.config.pixel_bits

    @property
    def bit_savings(self) -> float:
        """Fraction of the raw read-out bits saved by compressive delivery."""
        return 1.0 - self.compressed_bits / self.raw_bits

    def measurement_matrix(self) -> np.ndarray:
        """Rebuild Φ from the seed — what the receiver does before reconstruction."""
        generator = CASelectionGenerator(
            self.config.rows,
            self.config.cols,
            seed_state=self.seed_state,
            rule=self.rule_number,
            steps_per_sample=self.steps_per_sample,
            warmup_steps=self.warmup_steps,
        )
        return generator.measurement_matrix(self.n_samples)


class CompressiveImager:
    """Behavioural model of the full sensor chip.

    Parameters
    ----------
    config:
        Architectural parameters (defaults to the Table II prototype).
    encoder:
        The light-to-time conversion chain; a default encoder is built when
        omitted.
    ca_seed_state:
        Explicit CA seed bits (``rows + cols`` of them).  Random when omitted.
    rule:
        CA rule number (30 in the paper).
    steps_per_sample, warmup_steps:
        CA sequencing parameters.
    seed:
        Base seed for every stochastic element (CA seed draw, noise, LSB
        error injection), making captures reproducible end to end.
    """

    def __init__(
        self,
        config: SensorConfig | None = None,
        *,
        encoder: TimeEncoder | None = None,
        ca_seed_state: np.ndarray | None = None,
        rule: int = 30,
        steps_per_sample: int = 1,
        warmup_steps: int = 8,
        seed: int = 2018,
    ) -> None:
        self.config = config or SensorConfig()
        self.encoder = encoder or TimeEncoder()
        self.seed = int(seed)
        self.rule_number = int(rule)
        self.steps_per_sample = int(steps_per_sample)
        self.warmup_steps = int(warmup_steps)
        self.selection = CASelectionGenerator(
            self.config.rows,
            self.config.cols,
            seed_state=ca_seed_state,
            rule=rule,
            steps_per_sample=steps_per_sample,
            warmup_steps=warmup_steps,
            seed=derive_seed(self.seed, "ca-seed"),
        )
        self.tdc = GlobalCounterTDC(
            clock_frequency=self.config.clock_frequency,
            n_bits=self.config.pixel_bits,
        )
        self.arbiter = ColumnBusArbiter(event_duration=self.config.event_duration)
        if self.config.conversion_time > self.config.compressed_sample_period:
            raise ValueError(
                "the TDC conversion window does not fit in the compressed-sample "
                f"period ({self.config.conversion_time:.3e} s > "
                f"{self.config.compressed_sample_period:.3e} s); lower the frame "
                "rate, the compression ratio or the counter depth"
            )

    # ------------------------------------------------------------- exposure
    def auto_expose(self, photocurrent: np.ndarray, *, margin: float = 0.9) -> None:
        """Adapt ``V_ref`` so the dimmest pixel fires inside the conversion window.

        This is the on-line ``V_rst``/``V_ref`` adaptation the paper
        mentions; without it a scene with very dim pixels would saturate at
        the maximum code (the pulses never arrive).
        """
        photocurrent = np.asarray(photocurrent, dtype=float)
        positive = photocurrent[photocurrent > 0.0]
        if positive.size == 0:
            raise ValueError("photocurrent must contain at least one positive entry")
        self.encoder.adapt_to_range(
            float(positive.min()), self.config.conversion_time, margin=margin
        )

    def firing_times(self, photocurrent: np.ndarray, *, rng: SeedLike = None) -> np.ndarray:
        """Per-pixel firing times for the given photocurrent map."""
        photocurrent = np.asarray(photocurrent, dtype=float)
        if photocurrent.shape != (self.config.rows, self.config.cols):
            raise ValueError(
                f"photocurrent must have shape {(self.config.rows, self.config.cols)}, "
                f"got {photocurrent.shape}"
            )
        return self.encoder.firing_times(photocurrent, rng=rng)

    def digital_image(self, photocurrent: np.ndarray, *, rng: SeedLike = None) -> np.ndarray:
        """The ideal TDC code of every pixel — the digital image Φ acts on."""
        return self.tdc.ideal_codes(self.firing_times(photocurrent, rng=rng))

    # -------------------------------------------------------------- capture
    def capture(
        self,
        photocurrent: np.ndarray,
        *,
        n_samples: int | None = None,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        keep_digital_image: bool = True,
        engine: str = "batched",
        dtype: str = "float64",
    ) -> CompressedFrame:
        """Capture one compressive frame from a photocurrent map.

        Parameters
        ----------
        photocurrent : numpy.ndarray
            Per-pixel photocurrent (A), shape ``(rows, cols)``, any real
            dtype (converted to ``float64``).
        n_samples : int, optional
            Number of compressed samples; defaults to ``R * M * N`` from the
            configuration.
        fidelity : {"behavioural", "event"}
            ``"behavioural"`` (vectorised Φ @ x) or ``"event"`` (full token
            protocol and sample-and-add registers, column-parallel).
        auto_expose : bool
            Adapt ``V_ref`` to the scene before capturing.
        lsb_error : bool
            Model the late-detection +1 LSB error (stochastically in
            behavioural mode, exactly in event mode).
        keep_digital_image : bool
            Store the ideal code image in the returned frame.
        engine : {"batched", "reference"}
            The reference engine runs the event-accurate capture through the
            original per-column Python loop — the executable specification
            the batched engine is pinned against; behavioural captures are
            batched either way.
        dtype : {"float64", "float32"}
            Arithmetic width of the behavioural fast path.  The default
            ``"float64"`` is bit-exact (byte-identical to the legacy
            per-pattern loop).  ``"float32"`` is the fast mode for very large
            arrays: the Φ @ x matmuls run in single precision and the
            per-event stochastic LSB bookkeeping is replaced by its
            expectation — see :data:`FLOAT32_SAMPLE_ATOL` for the documented
            accuracy contract.  Flagged in ``metadata["dtype"]``; rejected
            for ``fidelity="event"``, which is exact by construction.

        Returns
        -------
        CompressedFrame
            Samples (``int64``, shape ``(n_samples,)``), the CA seed, the
            configuration and the capture statistics ``metadata``.
        """
        check_choice("fidelity", fidelity, ("behavioural", "event"))
        check_choice("engine", engine, ("batched", "reference"))
        check_choice("dtype", dtype, ("float64", "float32"))
        if fidelity == "event" and dtype != "float64":
            raise ValueError(
                "dtype='float32' is a behavioural fast mode; the event-accurate "
                "engine is integer-exact and only supports dtype='float64'"
            )
        if n_samples is None:
            n_samples = self.config.samples_per_frame
        check_positive("n_samples", n_samples)
        n_samples = int(n_samples)

        photocurrent = np.asarray(photocurrent, dtype=float)
        if auto_expose:
            self.auto_expose(photocurrent)
        # The noise draws (comparator offsets, LSB-error injection) depend only on
        # the imager seed, so the same scene captured at both fidelity levels sees
        # the same analog front end and the two paths can be compared exactly.
        rng = new_rng(derive_seed(self.seed, "capture"))
        times = self.firing_times(photocurrent, rng=rng)
        codes = self.tdc.ideal_codes(times)

        self.selection.reset()
        if fidelity == "behavioural":
            samples, metadata = self._capture_behavioural(
                codes, times, n_samples, lsb_error=lsb_error, rng=rng, dtype=dtype
            )
        elif engine == "reference":
            samples, metadata = self._capture_event_reference(
                times, n_samples, lsb_error=lsb_error
            )
        else:
            samples, metadata = self._capture_event(
                times, self.selection.next_states(n_samples), lsb_error=lsb_error
            )
        return self._assemble_frame(
            samples,
            metadata,
            codes,
            fidelity=fidelity,
            seed_state=self.selection.seed_state,
            warmup_steps=self.warmup_steps,
            keep_digital_image=keep_digital_image,
        )

    def _assemble_frame(
        self,
        samples: np.ndarray,
        metadata: dict[str, object],
        codes: np.ndarray,
        *,
        fidelity: str,
        seed_state: np.ndarray,
        warmup_steps: int,
        keep_digital_image: bool,
    ) -> CompressedFrame:
        """Stamp the common capture metadata and box one frame.

        The single frame-assembly epilogue shared by :meth:`capture` and
        :meth:`capture_batch`, so the two capture paths cannot drift in
        metadata shape.
        """
        metadata["fidelity"] = fidelity
        metadata["n_saturated_pixels"] = int(np.count_nonzero(codes >= self.tdc.max_code))
        return CompressedFrame(
            samples=samples,
            seed_state=seed_state,
            rule_number=self.rule_number,
            steps_per_sample=self.steps_per_sample,
            warmup_steps=warmup_steps,
            config=self.config,
            digital_image=codes if keep_digital_image else None,
            metadata=metadata,
        )

    def capture_scene(
        self,
        scene: np.ndarray,
        *,
        conversion=None,
        n_samples: int | None = None,
        fidelity: str = "behavioural",
        **kwargs,
    ) -> CompressedFrame:
        """Convenience wrapper: convert a normalised scene to photocurrents and capture."""
        from repro.optics.photo import PhotoConversion

        conversion = conversion or PhotoConversion(seed=derive_seed(self.seed, "photo"))
        photocurrent = conversion.convert(np.asarray(scene, dtype=float))
        return self.capture(
            photocurrent, n_samples=n_samples, fidelity=fidelity, **kwargs
        )

    def capture_batch(
        self,
        photocurrents,
        *,
        n_samples: int | None = None,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        keep_digital_image: bool = True,
        dtype: str = "float64",
    ) -> list[CompressedFrame]:
        """Capture a stack of frames with a continuously-running selection CA.

        This is the batched multi-frame fast path: the CA states for the
        *whole sequence* are evolved in one pass and each frame consumes its
        own slice — through the rank-structured Φ @ x engine in behavioural
        fidelity, or through the column-parallel arbitration engine in event
        fidelity.  Consecutive frames overlap by one selection pattern,
        exactly as the hardware's free-running CA does (frame ``k+1``'s first
        pattern is the state frame ``k`` stopped on), so every produced frame
        remains independently decodable from its own ``seed_state``.

        The result is bit-identical to capturing the frames one by one and
        re-seeding the generator from the CA's end state between frames —
        the loop :class:`~repro.sensor.video.VideoSequencer` used to run —
        and the imager's selection generator is left positioned after the
        last frame, so further captures continue the same CA evolution.

        Parameters
        ----------
        photocurrents : iterable of numpy.ndarray
            Per-frame photocurrent maps, each of shape ``(rows, cols)``.
        n_samples : int, optional
            Compressed samples per frame; defaults to ``R * M * N``.
        fidelity : {"behavioural", "event"}
            Capture engine, as in :meth:`capture`.
        auto_expose, lsb_error, keep_digital_image : bool
            As in :meth:`capture`, applied to every frame.
        dtype : {"float64", "float32"}
            Behavioural arithmetic width, as in :meth:`capture`; the float32
            fast mode applies to every frame of the batch and is rejected
            for ``fidelity="event"``.

        Returns
        -------
        list of CompressedFrame
            One frame per input scene, in order, each independently
            decodable from its own ``seed_state``.
        """
        check_choice("fidelity", fidelity, ("behavioural", "event"))
        check_choice("dtype", dtype, ("float64", "float32"))
        if fidelity == "event" and dtype != "float64":
            raise ValueError(
                "dtype='float32' is a behavioural fast mode; the event-accurate "
                "engine is integer-exact and only supports dtype='float64'"
            )
        photocurrents = [np.asarray(current, dtype=float) for current in photocurrents]
        if not photocurrents:
            return []
        if n_samples is None:
            n_samples = self.config.samples_per_frame
        check_positive("n_samples", n_samples)
        n_samples = int(n_samples)
        n_frames = len(photocurrents)

        # One batched CA evolution covers the whole sequence: frame f uses
        # global states [f*(n_samples-1), f*(n_samples-1) + n_samples).
        first_seed_state = self.selection.seed_state
        first_warmup = self.warmup_steps
        n_states = n_frames * (n_samples - 1) + 1
        states = self._sequence_states(n_states)

        frames: list[CompressedFrame] = []
        for frame_index, photocurrent in enumerate(photocurrents):
            if auto_expose:
                self.auto_expose(photocurrent)
            # Each frame re-derives the same capture stream a standalone
            # capture() would, keeping batch and one-by-one captures equal.
            rng = new_rng(derive_seed(self.seed, "capture"))
            times = self.firing_times(photocurrent, rng=rng)
            codes = self.tdc.ideal_codes(times)
            start = frame_index * (n_samples - 1)
            frame_states = states[start : start + n_samples]
            if fidelity == "behavioural":
                lsb_probability = self._behavioural_lsb_probability(lsb_error)
                samples, n_bumped = self._behavioural_samples(
                    frame_states,
                    codes,
                    lsb_probability=lsb_probability,
                    rng=rng,
                    dtype=dtype,
                )
                metadata = self._behavioural_metadata(
                    frame_states, times, lsb_probability, n_bumped, dtype=dtype
                )
            else:
                samples, metadata = self._capture_event(
                    times, frame_states, lsb_error=lsb_error
                )
            frames.append(
                self._assemble_frame(
                    samples,
                    metadata,
                    codes,
                    fidelity=fidelity,
                    seed_state=first_seed_state if frame_index == 0 else states[start].copy(),
                    warmup_steps=first_warmup if frame_index == 0 else 0,
                    keep_digital_image=keep_digital_image,
                )
            )
        # Leave the imager's CA where the sequence ended: the last state
        # becomes the seed of whatever is captured next, with no warm-up
        # (the register is already well mixed).
        self.selection = CASelectionGenerator(
            self.config.rows,
            self.config.cols,
            seed_state=states[-1],
            rule=self.rule_number,
            steps_per_sample=self.steps_per_sample,
            warmup_steps=0,
        )
        self.warmup_steps = 0
        return frames

    def _sequence_states(self, n_states: int) -> np.ndarray:
        """Evolve the CA states of a whole capture sequence in one pass.

        Starts from the generator's post-warm-up seed position (what
        ``selection.reset()`` rewinds to) without disturbing the generator
        itself, mirroring how each standalone capture begins.
        """
        generator = CASelectionGenerator(
            self.config.rows,
            self.config.cols,
            seed_state=self.selection.seed_state,
            rule=self.rule_number,
            steps_per_sample=self.steps_per_sample,
            warmup_steps=self.warmup_steps,
        )
        return generator.next_states(int(n_states))

    # ----------------------------------------------------- behavioural path
    def _behavioural_lsb_probability(self, lsb_error: bool) -> float:
        if not lsb_error:
            return 0.0
        # A pulse slips into the next clock period when queueing pushes it
        # across a tick boundary; the per-event probability is bounded by
        # the chance of colliding with another event of the same column.
        return self.config.event_overlap_probability(self.config.rows // 2)

    @staticmethod
    def _rank_structured_project(
        row_signals: np.ndarray, col_signals: np.ndarray, image: np.ndarray
    ) -> np.ndarray:
        """``Φ @ image.ravel()`` without materialising Φ.

        The XOR construction makes ``Φ[i] = R_i ⊕ C_i = R_i + C_i − 2 R_i C_i``
        a rank-structured mask, so one frame's projection reduces to three
        small matmuls over the raw row/column CA signals.  The arithmetic
        runs in whatever float dtype the three operands carry.
        """
        return (
            row_signals @ image.sum(axis=1)
            + col_signals @ image.sum(axis=0)
            - 2.0 * ((row_signals @ image) * col_signals).sum(axis=1)
        )

    def _behavioural_samples_fast(
        self,
        states: np.ndarray,
        codes: np.ndarray,
        *,
        lsb_probability: float,
    ):
        """The ``dtype="float32"`` fast mode: single precision, expected LSB.

        Two bookkeeping costs of the exact engine are dropped for very large
        arrays: the matmuls run in float32 (half the memory traffic), and the
        one-uniform-draw-per-selected-event LSB machinery is replaced by its
        expectation — each sample gains ``p x (selected, unsaturated pixels)``
        deterministic bumps instead of a binomial draw.  Saturated pixels are
        excluded from the expectation exactly as the exact path excludes them
        from the effective draws.  The accuracy contract versus float64 is
        documented at :data:`FLOAT32_SAMPLE_ATOL`.

        Returns ``(samples, expected_bumps)``; the bump count is a float
        expectation, not an integer tally.
        """
        rows, cols = self.config.rows, self.config.cols
        row_signals = states[:, :rows].astype(np.float32)
        col_signals = states[:, rows:].astype(np.float32)
        image = codes.reshape(rows, cols).astype(np.float32)
        samples = self._rank_structured_project(row_signals, col_signals, image)
        expected_bumps = 0.0
        if lsb_probability > 0.0:
            # Bumps only land on selected pixels that are not saturated; the
            # per-sample count of those is the same rank-structured projection
            # applied to the 0/1 "unsaturated" indicator image.
            live = (codes < self.tdc.max_code).astype(np.float32).reshape(rows, cols)
            eligible = self._rank_structured_project(row_signals, col_signals, live)
            samples = samples + np.float32(lsb_probability) * eligible
            expected_bumps = float(lsb_probability * eligible.sum())
        return np.rint(samples).astype(np.int64), expected_bumps

    def _behavioural_samples(
        self,
        states: np.ndarray,
        codes: np.ndarray,
        *,
        lsb_probability: float,
        rng: np.random.Generator,
        dtype: str = "float64",
    ):
        """One frame's compressed samples from its CA state stack, fully batched.

        ``samples = Φ @ codes`` without materialising Φ: the XOR construction
        makes ``Φ[i] = R_i ⊕ C_i = R_i + C_i - 2 R_i C_i`` a rank-structured
        mask, so the whole frame reduces to three small matmuls over the raw
        row/column CA signals.  All intermediates are integers well below
        2**53, so the float64 BLAS path is exact and the result equals the
        integer matmul bit for bit.

        The +1 LSB late-detection error is one uniform draw per selected
        event, taken in the exact event order (sample-major, then raster
        pixel order) the legacy per-pattern loop consumed them, so the output
        is bit-identical to that loop for the same generator stream.

        ``dtype="float32"`` routes to :meth:`_behavioural_samples_fast`
        instead; the default float64 path below is untouched and stays
        byte-exact.
        """
        if dtype == "float32":
            return self._behavioural_samples_fast(
                states, codes, lsb_probability=lsb_probability
            )
        rows, cols = self.config.rows, self.config.cols
        row_signals = states[:, :rows].astype(np.float64)
        col_signals = states[:, rows:].astype(np.float64)
        image = codes.reshape(rows, cols).astype(np.float64)
        samples = self._rank_structured_project(
            row_signals, col_signals, image
        ).astype(np.int64)
        n_bumped = 0
        if lsb_probability > 0.0:
            n_row_high = row_signals.sum(axis=1)
            n_col_high = col_signals.sum(axis=1)
            counts = (
                n_row_high * (cols - n_col_high) + (rows - n_row_high) * n_col_high
            ).astype(np.int64)
            offsets = np.concatenate(([0], np.cumsum(counts)))
            bumps = draw_lsb_bumps(int(offsets[-1]), lsb_probability, rng=rng)
            if np.all(codes < self.tdc.max_code):
                # No saturated pixel: every bump lands.  Per-sample bump
                # totals are segment sums over the contiguous draw vector.
                if bumps.size and counts.min() > 0:
                    samples += np.add.reduceat(
                        bumps.view(np.uint8), offsets[:-1], dtype=np.int64
                    )
                elif bumps.size:
                    # Empty segments (a degenerate all-equal CA state) break
                    # reduceat's index convention; fall back to cumsum.
                    bump_totals = np.concatenate(([0], np.cumsum(bumps)))[offsets]
                    samples += bump_totals[1:] - bump_totals[:-1]
                n_bumped = int(np.count_nonzero(bumps))
            else:
                # A bump on an already-saturated code clips back to max_code
                # and neither shifts the sample nor counts as an error; this
                # needs per-event pixel identity, so rebuild the mask batch.
                phi = selection_masks_from_states(states, rows, cols)
                sample_index, pixel_index = np.nonzero(phi)
                effective = bumps & (codes.reshape(-1)[pixel_index] < self.tdc.max_code)
                if effective.any():
                    samples += np.bincount(
                        sample_index[effective], minlength=samples.size
                    )
                n_bumped = int(np.count_nonzero(effective))
        return samples, n_bumped

    def _behavioural_metadata(
        self,
        states: np.ndarray,
        times: np.ndarray,
        lsb_probability: float,
        n_bumped,
        *,
        dtype: str = "float64",
    ) -> dict[str, object]:
        """Behavioural capture statistics, with *modelled* event counts.

        The behavioural engine never arbitrates a bus, so it cannot count
        lost or queued events exactly; instead of hard-coding zeros it
        reports what the paper's overlap-probability model predicts:

        * ``n_lost_events`` — the exact number of selected events whose pulse
          falls outside the conversion window (the event engine's pre-filter
          losses).  Note the semantic difference: the event engine drops
          these pulses entirely, while the behavioural sum still counts their
          saturated ``max_code`` value.
        * ``n_queued_events`` — the *expected* number of queued events, a
          float: (delivered events) x (per-event overlap probability).

        ``event_statistics`` is ``"modelled"`` here and ``"exact"`` for event
        fidelity, so downstream consumers can tell the two apart.  ``dtype``
        records the arithmetic width of the capture; in the float32 fast
        mode ``n_lsb_errors`` is the *expected* bump count (a float), since
        that mode applies the expectation instead of drawing per event.
        """
        rows, cols = self.config.rows, self.config.cols
        row_signals = states[:, :rows].astype(np.int64)
        col_signals = states[:, rows:].astype(np.int64)
        n_row_high = row_signals.sum(axis=1)
        n_col_high = col_signals.sum(axis=1)
        n_selected = int(
            (n_row_high * (cols - n_col_high) + (rows - n_row_high) * n_col_high).sum()
        )
        outside_window = ~(np.isfinite(times) & (times < self.tdc.conversion_window))
        n_lost = 0
        if outside_window.any():
            lost_image = outside_window.astype(np.int64)
            n_lost = int(
                np.einsum("si,ij,sj->", row_signals, lost_image, 1 - col_signals)
                + np.einsum("si,ij,sj->", 1 - row_signals, lost_image, col_signals)
            )
        overlap = self.config.event_overlap_probability(self.config.rows // 2)
        return {
            "lsb_error_probability": float(lsb_probability),
            "n_lsb_errors": float(n_bumped) if dtype == "float32" else int(n_bumped),
            "n_lost_events": n_lost,
            "n_queued_events": float((n_selected - n_lost) * overlap),
            "event_statistics": "modelled",
            "dtype": dtype,
        }

    def _capture_behavioural(
        self,
        codes: np.ndarray,
        times: np.ndarray,
        n_samples: int,
        *,
        lsb_error: bool,
        rng: np.random.Generator,
        dtype: str = "float64",
    ):
        lsb_probability = self._behavioural_lsb_probability(lsb_error)
        states = self.selection.next_states(n_samples)
        samples, n_bumped = self._behavioural_samples(
            states, codes, lsb_probability=lsb_probability, rng=rng, dtype=dtype
        )
        return samples, self._behavioural_metadata(
            states, times, lsb_probability, n_bumped, dtype=dtype
        )

    # ------------------------------------------------------------ event path
    def _capture_event(self, times: np.ndarray, states: np.ndarray, *, lsb_error: bool):
        """Event-accurate capture of one frame, column-parallel.

        The per-event Python loop this replaces walked every pattern, column
        and pixel object; here the whole frame is four numpy passes:

        1. sort each column's firing times once (they are shared by every
           selection pattern) and expand the CA states into per-(sample,
           column) activity flags over that sorted order;
        2. run the vectorised single-server recurrence of
           :func:`~repro.sensor.column_bus.arbitrate_columns` over all
           sample x column bus instances at once — collision pools of three
           or more events fall back to the scalar arbiter, which remains the
           executable specification;
        3. sample the global counter at every delivered emission instant in
           one :meth:`~repro.sensor.tdc.GlobalCounterTDC.late_detection_codes`
           call;
        4. fold the per-column code sums through the batched Sample & Add.

        The result — samples, lost/queued counts, LSB errors, maximum queue
        delay — is event-for-event identical to the reference loop
        (``tests/sensor/test_event_equivalence.py`` pins this).
        """
        rows, cols = self.config.rows, self.config.cols
        n_samples = states.shape[0]
        deadline = self.tdc.conversion_window
        order, sorted_times, valid = column_event_order(times, deadline)

        row_signals = states[:, :rows].astype(bool)
        col_signals = states[:, rows:].astype(bool)
        selected = row_signals[:, :, None] != col_signals[:, None, :]
        n_lost_outside = int(np.count_nonzero(selected & ~valid[None, :, :]))
        eligible = selected & valid[None, :, :]

        # Re-order the row axis of every column into firing order and fold
        # (sample, column) into one group axis: each group is one bus.
        active = np.take_along_axis(eligible, order[None, :, :], axis=1)
        n_groups = n_samples * cols
        active = active.transpose(0, 2, 1).reshape(n_groups, rows)
        fire_times = np.broadcast_to(
            sorted_times.T[None], (n_samples, cols, rows)
        ).reshape(n_groups, rows)
        slot_rows = np.broadcast_to(order.T[None], (n_samples, cols, rows)).reshape(
            n_groups, rows
        )
        batch = arbitrate_columns(
            fire_times,
            active,
            slot_rows,
            event_duration=self.config.event_duration,
            deadline=deadline,
        )

        delivered = batch.delivered
        emit_times = batch.emit_times[delivered]
        paired_fires = batch.fire_times[delivered]
        sample_times = emit_times if lsb_error else paired_fires
        codes, ideal = self.tdc.late_detection_codes(sample_times, paired_fires)
        delays = emit_times - paired_fires

        code_matrix = np.zeros(delivered.shape, dtype=np.int64)
        code_matrix[delivered] = codes
        samples = fold_column_sums(
            code_matrix.sum(axis=1).reshape(n_samples, cols),
            column_bits=self.config.column_sum_bits,
            sample_bits=self.config.compressed_sample_bits,
        )
        metadata = {
            "n_lost_events": n_lost_outside + batch.n_dropped,
            "n_queued_events": int(np.count_nonzero(delays > 0.0)),
            "n_lsb_errors": int(np.count_nonzero(codes != ideal)),
            "max_queue_delay": float(delays.max()) if delays.size else 0.0,
            "event_statistics": "exact",
        }
        return samples, metadata

    def _capture_event_reference(
        self,
        times: np.ndarray,
        n_samples: int,
        *,
        lsb_error: bool,
    ):
        """The original per-column event loop — the executable specification.

        Every selection pattern walks every column through the scalar
        :class:`~repro.sensor.column_bus.ColumnBusArbiter` and the register
        level :class:`~repro.sensor.sample_add.SampleAndAdd`.  Kept (and
        reachable via ``capture(engine="reference")``) so the equivalence
        suite and the event-fidelity benchmarks can pin the batched engine
        against it event for event.
        """
        adder = SampleAndAdd(
            n_columns=self.config.cols,
            column_bits=self.config.column_sum_bits,
            sample_bits=self.config.compressed_sample_bits,
        )
        samples = np.empty(n_samples, dtype=np.int64)
        n_lost = 0
        n_queued = 0
        n_lsb_errors = 0
        max_queue_delay = 0.0
        deadline = self.tdc.conversion_window
        for index, pattern in enumerate(self.selection.patterns(n_samples)):
            adder.reset()
            for col in range(self.config.cols):
                selected_rows = np.nonzero(pattern.mask[:, col])[0]
                events: list[PixelEvent] = []
                for row in selected_rows:
                    fire_time = times[row, col]
                    if not np.isfinite(fire_time) or fire_time >= deadline:
                        n_lost += 1
                        continue
                    events.append(
                        PixelEvent(row=int(row), col=int(col), fire_time=float(fire_time))
                    )
                if not events:
                    continue
                result = self.arbiter.arbitrate(events, deadline=deadline)
                n_lost += len(events) - result.n_events
                n_queued += result.n_queued
                max_queue_delay = max(max_queue_delay, result.max_queue_delay)
                for event in result.events:
                    sample_time = event.emit_time if lsb_error else event.fire_time
                    code = int(self.tdc.sample(np.array([sample_time]))[0])
                    ideal = int(self.tdc.sample(np.array([event.fire_time]))[0])
                    if code != ideal:
                        n_lsb_errors += 1
                    adder.add_code(event.col, code)
            samples[index] = adder.compressed_sample()
        metadata = {
            "n_lost_events": int(n_lost),
            "n_queued_events": int(n_queued),
            "n_lsb_errors": int(n_lsb_errors),
            "max_queue_delay": float(max_queue_delay),
            "event_statistics": "exact",
        }
        return samples, metadata

    # ------------------------------------------------------------ reporting
    def ideal_samples(self, codes: np.ndarray, n_samples: int) -> np.ndarray:
        """Compressed samples with a perfect read-out (no LSB error, no losses).

        Used as the reference when quantifying the influence of the
        late-detection error (benchmark E8).
        """
        check_positive("n_samples", n_samples)
        matrix = self.selection.measurement_matrix(int(n_samples))
        return matrix.astype(np.int64) @ codes.reshape(-1).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressiveImager(rows={self.config.rows}, cols={self.config.cols}, "
            f"rule={self.rule_number}, R={self.config.compression_ratio})"
        )
