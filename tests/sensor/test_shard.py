"""Tiled-sensor sharding: geometry, merging, statistics and executors.

Pins the contracts of :mod:`repro.sensor.shard`:

* the tile grid partitions the scene exactly, shrinking edge tiles when the
  scene is not divisible by the tile shape (including the degenerate
  single-tile grid);
* per-tile event statistics sum correctly into the merged
  :class:`TiledCaptureResult` metadata;
* the samples are byte-identical whichever executor captures the tiles —
  the executor is a wall-clock knob, never a semantics knob.
"""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.shard import TiledSensorArray, merge_tile_statistics


def make_current(shape, seed=5, kind="natural"):
    scene = make_scene(kind, shape, seed=seed)
    return PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)


class TestTileGeometry:
    def test_divisible_scene_uniform_grid(self):
        array = TiledSensorArray((64, 96), tile_shape=(32, 32), seed=1)
        assert array.grid_shape == (2, 3)
        assert all(
            (slot.rows, slot.cols) == (32, 32)
            for row in array.slots
            for slot in row
        )

    def test_non_divisible_scene_shrinks_edge_tiles(self):
        array = TiledSensorArray((48, 40), tile_shape=(32, 32), seed=1)
        assert array.grid_shape == (2, 2)
        shapes = [
            (slot.rows, slot.cols) for row in array.slots for slot in row
        ]
        assert shapes == [(32, 32), (32, 8), (16, 32), (16, 8)]

    def test_slots_partition_the_scene_exactly(self):
        array = TiledSensorArray((48, 40), tile_shape=(32, 32), seed=1)
        coverage = np.zeros((48, 40), dtype=int)
        for row in array.slots:
            for slot in row:
                coverage[slot.row_slice, slot.col_slice] += 1
        assert (coverage == 1).all()

    def test_single_tile_degenerate_grid(self):
        array = TiledSensorArray((32, 32), tile_shape=(32, 32), seed=1)
        assert array.grid_shape == (1, 1)
        assert array.n_tiles == 1

    def test_scene_smaller_than_tile_shrinks_tile(self):
        array = TiledSensorArray((16, 24), tile_shape=(64, 64), seed=1)
        assert array.grid_shape == (1, 1)
        assert array.tile_shape == (16, 24)
        assert array.slots[0][0].n_pixels == 16 * 24

    def test_tiles_have_independent_ca_seeds(self):
        array = TiledSensorArray((64, 64), tile_shape=(32, 32), seed=1)
        seeds = [
            imager.selection.seed_state.tobytes()
            for row in array.imagers
            for imager in row
        ]
        assert len(set(seeds)) == len(seeds)

    def test_edge_tile_sample_budget_is_proportional(self):
        array = TiledSensorArray(
            (48, 32), tile_shape=(32, 32), compression_ratio=0.25, seed=1
        )
        full, edge = array.slots[0][0], array.slots[1][0]
        assert array.samples_per_tile(full) == round(0.25 * 32 * 32)
        assert array.samples_per_tile(edge) == round(0.25 * 16 * 32)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            TiledSensorArray((32, 32), executor="fleet")

    def test_shape_mismatch_rejected(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=1)
        with pytest.raises(ValueError, match="shape"):
            array.capture(np.zeros((16, 16)))


class TestTiledCapture:
    def test_merged_samples_concatenate_in_grid_order(self):
        array = TiledSensorArray((32, 48), tile_shape=(16, 16), seed=3)
        result = array.capture(make_current((32, 48)))
        assert result.grid_shape == (2, 3)
        expected = np.concatenate(
            [frame.samples for _, frame in result.frames()]
        )
        assert np.array_equal(result.samples, expected)
        assert result.n_samples == expected.size
        assert result.compression_ratio == pytest.approx(
            expected.size / (32 * 48)
        )

    def test_single_tile_matches_direct_imager_capture(self):
        array = TiledSensorArray((16, 16), tile_shape=(16, 16), seed=3)
        current = make_current((16, 16))
        result = array.capture(current)
        direct = array.imagers[0][0].capture(
            current, n_samples=array.samples_per_tile(array.slots[0][0])
        )
        assert result.n_tiles == 1
        assert np.array_equal(result.samples, direct.samples)

    def test_executor_choice_does_not_change_samples(self):
        current = make_current((32, 32))
        captures = {}
        for executor in ("serial", "thread", "process"):
            array = TiledSensorArray(
                (32, 32), tile_shape=(16, 16), seed=3,
                executor=executor, max_workers=2,
            )
            captures[executor] = array.capture(current).samples
        assert np.array_equal(captures["serial"], captures["thread"])
        assert np.array_equal(captures["serial"], captures["process"])

    def test_capture_history_does_not_leak_across_executors(self):
        # Tile captures run on imager copies, so an earlier auto-exposing
        # capture must not shift a later auto_expose=False capture — in any
        # executor (a process worker's state dies with the worker; the
        # parent's must behave identically).
        current = make_current((32, 32))
        outcomes = {}
        for executor in ("serial", "process"):
            array = TiledSensorArray(
                (32, 32), tile_shape=(16, 16), seed=3,
                executor=executor, max_workers=2,
            )
            array.capture(current)  # adapts V_ref only on per-capture copies
            outcomes[executor] = array.capture(current, auto_expose=False).samples
        assert np.array_equal(outcomes["serial"], outcomes["process"])

    def test_per_call_executor_override(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=3)
        current = make_current((32, 32))
        serial = array.capture(current, executor="serial")
        threaded = array.capture(current, executor="thread", max_workers=2)
        assert np.array_equal(serial.samples, threaded.samples)
        assert serial.metadata["executor"] == "serial"
        assert threaded.metadata["executor"] == "thread"
        assert threaded.metadata["max_workers"] == 2

    def test_dark_tile_does_not_fail_the_mosaic(self):
        current = make_current((32, 32))
        current[:16, :16] = 0.0  # one fully dark chip
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=3)
        result = array.capture(current)
        assert result.n_tiles == 4
        dark = result.tiles[0][0]
        assert dark.metadata["n_saturated_pixels"] == 16 * 16

    def test_digital_image_stitches_scene(self):
        array = TiledSensorArray((32, 48), tile_shape=(16, 16), seed=3)
        result = array.capture(make_current((32, 48)))
        image = result.digital_image()
        assert image.shape == (32, 48)
        corner = result.tiles[0][0].digital_image
        assert np.array_equal(image[:16, :16], corner)

    def test_digital_image_requires_kept_tiles(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=3)
        result = array.capture(make_current((32, 32)), keep_digital_image=False)
        with pytest.raises(ValueError, match="keep_digital_image"):
            result.digital_image()

    def test_capture_scene_convenience(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=3)
        result = array.capture_scene(make_scene("blobs", (32, 32), seed=2))
        assert result.n_tiles == 4
        assert result.compressed_bits == sum(
            frame.compressed_bits for _, frame in result.frames()
        )

    def test_float32_dtype_flagged_per_tile_and_mosaic(self):
        array = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), dtype="float32", seed=3
        )
        result = array.capture(make_current((32, 32)))
        assert result.metadata["dtype"] == "float32"
        assert all(
            frame.metadata["dtype"] == "float32"
            for _, frame in result.frames()
        )


class TestStatisticsAggregation:
    def test_behavioural_statistics_sum_over_tiles(self):
        array = TiledSensorArray((32, 48), tile_shape=(16, 16), seed=3)
        result = array.capture(make_current((32, 48)))
        frames = [frame for _, frame in result.frames()]
        for key in ("n_lost_events", "n_lsb_errors", "n_saturated_pixels"):
            assert result.metadata[key] == sum(f.metadata[key] for f in frames)
        assert result.metadata["n_queued_events"] == pytest.approx(
            sum(f.metadata["n_queued_events"] for f in frames)
        )
        assert result.metadata["event_statistics"] == "modelled"
        assert isinstance(result.metadata["n_queued_events"], float)

    def test_event_statistics_sum_and_max_over_tiles(self):
        # A constant scene drives every selected pixel of a column to fire at
        # once, guaranteeing queueing on every tile.
        current = np.full((16, 32), 5e-9)
        array = TiledSensorArray(
            (16, 32), tile_shape=(16, 16), compression_ratio=0.2, seed=3
        )
        result = array.capture(current, fidelity="event")
        frames = [frame for _, frame in result.frames()]
        assert result.metadata["event_statistics"] == "exact"
        for key in ("n_lost_events", "n_queued_events", "n_lsb_errors"):
            assert result.metadata[key] == sum(f.metadata[key] for f in frames)
            assert isinstance(result.metadata[key], int)
        assert result.metadata["n_queued_events"] > 0
        assert result.metadata["max_queue_delay"] == max(
            f.metadata["max_queue_delay"] for f in frames
        )

    def test_merge_marks_mixed_fidelities_modelled(self):
        array = TiledSensorArray((16, 32), tile_shape=(16, 16), seed=3)
        current = make_current((16, 32))
        behavioural = array.capture(current).tiles[0][0]
        event = array.capture(current, fidelity="event").tiles[0][1]
        merged = merge_tile_statistics([behavioural, event])
        assert merged["event_statistics"] == "modelled"

    def test_template_config_propagates_to_tiles(self):
        template = SensorConfig(pixel_bits=10, clock_frequency=12.0e6)
        array = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), config=template, seed=3
        )
        for row in array.imagers:
            for imager in row:
                assert imager.config.pixel_bits == 10
                assert imager.config.clock_frequency == 12.0e6
                assert (imager.config.rows, imager.config.cols) == (16, 16)


class TestIterCapture:
    """The chunk iterator yields the same tiles capture() merges."""

    def test_matches_capture_in_row_major_order(self):
        array = TiledSensorArray((32, 48), tile_shape=(16, 16), seed=4)
        current = make_current((32, 48))
        merged = array.capture(current)
        streamed = list(array.iter_capture(current))
        assert [slot for slot, _ in streamed] == [slot for slot, _ in merged.frames()]
        for (_, iter_frame), (_, cap_frame) in zip(streamed, merged.frames()):
            assert np.array_equal(iter_frame.samples, cap_frame.samples)
            assert np.array_equal(iter_frame.seed_state, cap_frame.seed_state)

    def test_executor_neutral(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=4)
        current = make_current((32, 32))
        serial = [f.samples for _, f in array.iter_capture(current, executor="serial")]
        threaded = [f.samples for _, f in array.iter_capture(current, executor="thread")]
        for a, b in zip(serial, threaded):
            assert np.array_equal(a, b)

    def test_compression_ratio_override(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=4,
                                 compression_ratio=0.2)
        current = make_current((32, 32))
        degraded = list(array.iter_capture(current, compression_ratio=0.1))
        for _, frame in degraded:
            assert frame.n_samples == round(0.1 * 256)
        merged = array.capture(current, compression_ratio=0.1)
        assert merged.n_samples == 4 * round(0.1 * 256)
        # The array's configured ratio is untouched.
        assert array.compression_ratio == 0.2


class TestCaptureSequence:
    """Tiled video: per-tile CA continuity, executor neutrality, state."""

    def test_one_result_per_frame_with_continuous_ca(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=9,
                                 compression_ratio=0.15)
        currents = [make_current((32, 32), seed=i) for i in range(3)]
        results = array.capture_sequence(currents)
        assert len(results) == 3
        for frame_index, result in enumerate(results):
            assert result.metadata["frame_index"] == frame_index
            assert result.metadata["n_frames"] == 3
        # Within each tile the sequence must equal that tile's capture_batch.
        for grid_row, slot_row in enumerate(array.slots):
            for grid_col, slot in enumerate(slot_row):
                import copy as _copy
                chip = _copy.deepcopy(array.imagers[grid_row][grid_col])
                expected = chip.capture_batch(
                    [c[slot.row_slice, slot.col_slice] for c in currents],
                    n_samples=array.samples_per_tile(slot),
                )
                for frame_index, result in enumerate(results):
                    got = result.tiles[grid_row][grid_col]
                    assert np.array_equal(got.samples, expected[frame_index].samples)
                    assert np.array_equal(
                        got.seed_state, expected[frame_index].seed_state
                    )

    def test_executor_neutral(self):
        currents = [make_current((32, 32), seed=i) for i in range(2)]
        by_executor = {}
        for executor in ("serial", "thread"):
            array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=9)
            by_executor[executor] = array.capture_sequence(
                currents, executor=executor
            )
        for serial, threaded in zip(by_executor["serial"], by_executor["thread"]):
            assert np.array_equal(serial.samples, threaded.samples)

    def test_stateless_by_default_advance_opt_in(self):
        currents = [make_current((32, 32), seed=i) for i in range(2)]
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=9)
        seed_before = array.imagers[0][0].selection.seed_state
        first = array.capture_sequence(currents)
        # Stateless: a second identical call reproduces the first bit for bit.
        second = array.capture_sequence(currents)
        assert np.array_equal(first[0].samples, second[0].samples)
        assert np.array_equal(
            array.imagers[0][0].selection.seed_state, seed_before
        )
        # advance=True chains GOPs: split capture equals one long sequence.
        long_currents = [make_current((32, 32), seed=i) for i in range(4)]
        chained = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=9)
        gop_a = chained.capture_sequence(long_currents[:2], advance=True)
        gop_b = chained.capture_sequence(long_currents[2:], advance=True)
        whole = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=9)
        reference = whole.capture_sequence(long_currents)
        for got, expected in zip(gop_a + gop_b, reference):
            assert np.array_equal(got.samples, expected.samples)
            for (_, got_tile), (_, exp_tile) in zip(got.frames(), expected.frames()):
                assert np.array_equal(got_tile.seed_state, exp_tile.seed_state)

    def test_empty_sequence(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=9)
        assert array.capture_sequence([]) == []

    def test_shape_mismatch_rejected(self):
        array = TiledSensorArray((32, 32), tile_shape=(16, 16), seed=9)
        with pytest.raises(ValueError, match="shape"):
            array.capture_sequence([make_current((16, 16))])
