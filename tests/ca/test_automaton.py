"""Tests for the elementary CA engine."""

import numpy as np
import pytest

from repro.ca.automaton import BoundaryCondition, ElementaryCellularAutomaton
from repro.ca.rules import RuleTable


class TestConstruction:
    def test_requires_at_least_three_cells(self):
        with pytest.raises(ValueError):
            ElementaryCellularAutomaton(2)

    def test_explicit_seed_state_used(self):
        seed = [1, 0, 0, 1, 0]
        automaton = ElementaryCellularAutomaton(5, seed_state=seed)
        assert automaton.state.tolist() == seed

    def test_seed_state_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ElementaryCellularAutomaton(5, seed_state=[1, 0, 1])

    def test_random_seed_reproducible(self):
        a = ElementaryCellularAutomaton(16, seed=99)
        b = ElementaryCellularAutomaton(16, seed=99)
        assert np.array_equal(a.state, b.state)

    def test_accepts_rule_table_instance(self):
        automaton = ElementaryCellularAutomaton(8, RuleTable(110), seed=0)
        assert automaton.rule.number == 110


class TestStepping:
    def test_known_rule30_evolution_periodic(self):
        """One Rule 30 step of 00100 on a ring is 01110."""
        automaton = ElementaryCellularAutomaton(5, 30, seed_state=[0, 0, 1, 0, 0])
        assert automaton.step().tolist() == [0, 1, 1, 1, 0]

    def test_known_rule30_second_step(self):
        automaton = ElementaryCellularAutomaton(5, 30, seed_state=[0, 0, 1, 0, 0])
        automaton.step(2)
        assert automaton.state.tolist() == [1, 1, 0, 0, 1]

    def test_generation_counter(self):
        automaton = ElementaryCellularAutomaton(8, seed=1)
        automaton.step(5)
        assert automaton.generation == 5

    def test_step_zero_is_noop(self):
        automaton = ElementaryCellularAutomaton(8, seed=1)
        before = automaton.state
        automaton.step(0)
        assert np.array_equal(automaton.state, before)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            ElementaryCellularAutomaton(8, seed=1).step(-1)

    def test_states_remain_binary(self):
        automaton = ElementaryCellularAutomaton(32, seed=5)
        for _ in range(50):
            assert set(np.unique(automaton.step())).issubset({0, 1})


class TestBoundaries:
    def test_fixed_zero_boundary_differs_from_periodic(self):
        seed = [1, 0, 0, 0, 0, 0, 0, 1]
        ring = ElementaryCellularAutomaton(8, 30, seed_state=seed)
        fixed = ElementaryCellularAutomaton(
            8, 30, seed_state=seed, boundary=BoundaryCondition.FIXED_ZERO
        )
        ring.step()
        fixed.step()
        assert not np.array_equal(ring.state, fixed.state)

    def test_fixed_one_boundary_accepted(self):
        automaton = ElementaryCellularAutomaton(
            8, 30, seed_state=[0] * 8, boundary=BoundaryCondition.FIXED_ONE
        )
        # With all-zero state and '1' boundaries, only edge cells can activate.
        state = automaton.step()
        assert state[0] == 1
        assert state[-1] == 1
        assert state[1:-1].sum() == 0

    def test_all_zero_ring_stays_zero_under_rule30(self):
        automaton = ElementaryCellularAutomaton(8, 30, seed_state=[0] * 8)
        assert automaton.step(10).sum() == 0


class TestResetAndRun:
    def test_reset_restores_seed(self):
        automaton = ElementaryCellularAutomaton(16, seed=3)
        seed = automaton.state
        automaton.step(17)
        automaton.reset()
        assert np.array_equal(automaton.state, seed)
        assert automaton.generation == 0

    def test_reset_with_new_seed(self):
        automaton = ElementaryCellularAutomaton(4, seed=3)
        automaton.reset([1, 1, 0, 0])
        assert automaton.state.tolist() == [1, 1, 0, 0]

    def test_run_shape_includes_initial_row(self):
        automaton = ElementaryCellularAutomaton(10, seed=2)
        diagram = automaton.run(7)
        assert diagram.shape == (8, 10)

    def test_run_without_initial_row(self):
        automaton = ElementaryCellularAutomaton(10, seed=2)
        diagram = automaton.run(7, include_initial=False)
        assert diagram.shape == (7, 10)

    def test_run_rows_match_sequential_steps(self):
        a = ElementaryCellularAutomaton(12, seed=4)
        b = ElementaryCellularAutomaton(12, seed=4)
        diagram = a.run(5)
        for row in diagram[1:]:
            assert np.array_equal(row, b.step())

    def test_center_column_length(self):
        automaton = ElementaryCellularAutomaton(33, seed=1)
        assert automaton.center_column(64).shape == (64,)

    def test_determinism_from_equal_seeds(self):
        a = ElementaryCellularAutomaton(64, seed=11)
        b = ElementaryCellularAutomaton(64, seed_state=a.state)
        for _ in range(20):
            assert np.array_equal(a.step(), b.step())


class TestEvolveStates:
    """The batched evolution must replay step() exactly — step() is the
    executable reference the packed fast path is verified against."""

    @pytest.mark.parametrize("rule", [30, 90, 110, 184, 45, 0, 255])
    @pytest.mark.parametrize("n_cells", [3, 7, 16, 128, 130])
    def test_matches_sequential_steps_periodic(self, rule, n_cells):
        seed = (np.arange(n_cells) % 3 == 0).astype(np.uint8)
        a = ElementaryCellularAutomaton(n_cells, rule, seed_state=seed)
        b = ElementaryCellularAutomaton(n_cells, rule, seed_state=seed)
        snapshots = a.evolve_states(6, 2)
        reference = [b.state] + [b.step(2) for _ in range(5)]
        assert np.array_equal(snapshots, np.array(reference, dtype=np.uint8))
        assert np.array_equal(a.state, b.state)
        assert a.generation == b.generation

    @pytest.mark.parametrize(
        "boundary", [BoundaryCondition.FIXED_ZERO, BoundaryCondition.FIXED_ONE]
    )
    def test_matches_sequential_steps_fixed_boundaries(self, boundary):
        seed = np.ones(16, dtype=np.uint8)
        a = ElementaryCellularAutomaton(16, 30, seed_state=seed, boundary=boundary)
        b = ElementaryCellularAutomaton(16, 30, seed_state=seed, boundary=boundary)
        snapshots = a.evolve_states(5, 1)
        reference = [b.state] + [b.step() for _ in range(4)]
        assert np.array_equal(snapshots, np.array(reference, dtype=np.uint8))

    def test_step_before_first_offsets_the_stream(self):
        a = ElementaryCellularAutomaton(16, 30, seed_state=np.ones(16, dtype=np.uint8))
        b = ElementaryCellularAutomaton(16, 30, seed_state=np.ones(16, dtype=np.uint8))
        snapshots = a.evolve_states(4, 3, step_before_first=True)
        reference = [b.step(3) for _ in range(4)]
        assert np.array_equal(snapshots, np.array(reference, dtype=np.uint8))

    def test_zero_snapshots(self):
        automaton = ElementaryCellularAutomaton(8, 30, seed_state=np.ones(8, np.uint8))
        assert automaton.evolve_states(0, 1).shape == (0, 8)
        assert automaton.generation == 0

    def test_invalid_arguments(self):
        automaton = ElementaryCellularAutomaton(8, 30, seed_state=np.ones(8, np.uint8))
        with pytest.raises(ValueError):
            automaton.evolve_states(-1, 1)
        with pytest.raises(ValueError):
            automaton.evolve_states(3, 0)
