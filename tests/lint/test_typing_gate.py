"""Local proxy for the CI strict-typing gate.

The container running tier-1 has no mypy; CI installs its own and runs
``mypy --strict src/repro/cs src/repro/recon src/repro/stream``.  This test
keeps the property mypy's ``disallow_untyped_defs``/``disallow_incomplete_defs``
would enforce — every function in the strict trees is fully annotated — so
an unannotated def fails locally, long before CI.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterator

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: The trees pyproject.toml pins to ``strict = true``.
STRICT_TREES = ("cs", "recon", "stream")


def _strict_files() -> list[pathlib.Path]:
    files = []
    for tree in STRICT_TREES:
        files.extend(sorted((REPO_ROOT / "src" / "repro" / tree).rglob("*.py")))
    assert files, "strict trees vanished — update STRICT_TREES"
    return files


def _incomplete_defs(path: pathlib.Path) -> Iterator[tuple[int, str, list[str]]]:
    tree = ast.parse(path.read_text(encoding="utf-8"))

    class Visitor(ast.NodeVisitor):
        def _check(self, node: ast.AST) -> None:
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            missing = []
            args = node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append(f"*{args.vararg.arg}")
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append(f"**{args.kwarg.arg}")
            # __init__ returns None implicitly; everything else must say so.
            if node.returns is None and node.name != "__init__":
                missing.append("return type")
            if missing:
                found.append((node.lineno, node.name, missing))
            self.generic_visit(node)

        visit_FunctionDef = _check
        visit_AsyncFunctionDef = _check

    found: list[tuple[int, str, list[str]]] = []
    Visitor().visit(tree)
    return iter(found)


@pytest.mark.parametrize(
    "path",
    _strict_files(),
    ids=lambda path: str(path.relative_to(REPO_ROOT / "src")),
)
def test_strict_tree_defs_are_fully_annotated(path: pathlib.Path) -> None:
    problems = [
        f"{path}:{line} {name}: missing annotations for {', '.join(missing)}"
        for line, name, missing in _incomplete_defs(path)
    ]
    assert not problems, "\n".join(problems)


def test_py_typed_marker_ships() -> None:
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()


def test_mypy_strict_scope_matches_pyproject() -> None:
    """The trees this test guards are the trees pyproject marks strict."""
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    for tree in STRICT_TREES:
        assert f'"repro.{tree}.*"' in text, (
            f"pyproject.toml no longer marks repro.{tree} strict — "
            "keep STRICT_TREES and [[tool.mypy.overrides]] in lockstep"
        )
