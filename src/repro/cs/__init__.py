"""Compressive-sampling core.

This package is the algorithmic half of the reproduction: measurement
matrices (including the paper's CA-XOR full-frame strategy and the baselines
it is compared against), sparsifying dictionaries, the sensing operator that
combines the two, a family of reconstruction solvers, block-based compressive
sampling, and the analysis tools (coherence / RIP proxies, image-quality
metrics) used by the benchmarks.
"""

from repro.cs.block import BlockCompressiveSampler
from repro.cs.dictionaries import (
    DCT2Dictionary,
    Dictionary,
    Haar2Dictionary,
    IdentityDictionary,
    make_dictionary,
)
from repro.cs.matrices import (
    bernoulli_matrix,
    block_diagonal_matrix,
    ca_xor_matrix,
    center_matrix,
    gaussian_matrix,
    lfsr_matrix,
    rademacher_matrix,
    subsampled_hadamard_matrix,
)
from repro.cs.metrics import nmse, psnr, reconstruction_snr, ssim
from repro.cs.operators import BaseSensingOperator, SensingOperator, StepSizeCache
from repro.cs.structured import StructuredSensingOperator
from repro.cs.rip import babel_function, mutual_coherence, restricted_isometry_estimate
from repro.cs.solvers import basis_pursuit, cosamp, fista, iht, ista, omp

__all__ = [
    "Dictionary",
    "DCT2Dictionary",
    "Haar2Dictionary",
    "IdentityDictionary",
    "make_dictionary",
    "BaseSensingOperator",
    "SensingOperator",
    "StructuredSensingOperator",
    "StepSizeCache",
    "gaussian_matrix",
    "bernoulli_matrix",
    "rademacher_matrix",
    "subsampled_hadamard_matrix",
    "ca_xor_matrix",
    "lfsr_matrix",
    "block_diagonal_matrix",
    "center_matrix",
    "BlockCompressiveSampler",
    "psnr",
    "ssim",
    "nmse",
    "reconstruction_snr",
    "mutual_coherence",
    "babel_function",
    "restricted_isometry_estimate",
    "omp",
    "cosamp",
    "iht",
    "ista",
    "fista",
    "basis_pursuit",
]
