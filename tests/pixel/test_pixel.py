"""Tests for the assembled Pixel model."""

import numpy as np
import pytest

from repro.pixel.comparator import Comparator
from repro.pixel.photodiode import Photodiode
from repro.pixel.pixel import Pixel
from repro.pixel.time_encoder import TimeEncoder


def make_pixel(row=0, col=0) -> Pixel:
    encoder = TimeEncoder(
        photodiode=Photodiode(capacitance=10e-15, reset_voltage=3.3),
        comparator=Comparator(offset_sigma=0.0, delay=0.0),
        reference_voltage=1.0,
    )
    return Pixel(row=row, col=col, encoder=encoder)


class TestExposure:
    def test_expose_computes_fire_time(self):
        pixel = make_pixel()
        time = pixel.expose(1e-9)
        assert time == pytest.approx(23e-6, rel=1e-6)
        assert pixel.fire_time == time

    def test_zero_current_never_fires(self):
        pixel = make_pixel()
        assert np.isinf(pixel.expose(0.0))

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            make_pixel().expose(-1e-9)


class TestSelection:
    def test_selected_when_signals_differ(self):
        pixel = make_pixel()
        assert pixel.select(0, 1) is True
        assert pixel.selected

    def test_deselected_when_signals_equal(self):
        pixel = make_pixel()
        assert pixel.select(1, 1) is False

    def test_v2_gate_level_check(self):
        pixel = make_pixel()
        assert pixel.v2(1, 0, 1) == 0
        assert pixel.v2(1, 1, 1) == 1


class TestActivation:
    def test_selected_pixel_activates_after_fire_time(self):
        pixel = make_pixel(row=2, col=7)
        pixel.expose(1e-9)
        pixel.select(0, 1)
        assert pixel.maybe_activate(1e-6) is None  # too early
        event = pixel.maybe_activate(30e-6)
        assert event is not None
        assert (event.row, event.col) == (2, 7)
        assert event.fire_time == pytest.approx(23e-6, rel=1e-6)

    def test_deselected_pixel_never_activates(self):
        """The XOR gate stops the activation front before the latch (power saving)."""
        pixel = make_pixel()
        pixel.expose(1e-9)
        pixel.select(1, 1)
        assert pixel.maybe_activate(1.0) is None
        assert not pixel.latch.activated

    def test_pixel_activates_only_once(self):
        pixel = make_pixel()
        pixel.expose(1e-9)
        pixel.select(0, 1)
        assert pixel.maybe_activate(30e-6) is not None
        assert pixel.maybe_activate(31e-6) is None

    def test_reset_rearms(self):
        pixel = make_pixel()
        pixel.expose(1e-9)
        pixel.select(0, 1)
        pixel.maybe_activate(30e-6)
        pixel.reset()
        assert pixel.fire_time is None
        pixel.expose(1e-9)
        assert pixel.maybe_activate(30e-6) is not None

    def test_unexposed_pixel_does_not_activate(self):
        pixel = make_pixel()
        pixel.select(0, 1)
        assert pixel.maybe_activate(1.0) is None
