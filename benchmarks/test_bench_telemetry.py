"""Telemetry overhead benchmarks: the zero-cost contract, measured.

The ``telemetry`` group pins the two numbers the observability layer
promises (docs/OPERATIONS.md "Observability"):

* ``test_telemetry_disabled_overhead`` — a streamed video with
  ``telemetry=None`` versus the identical stream with a wired, *enabled*
  facade.  The disabled path is the default for every user, so the
  benchmark asserts inline that leaving telemetry out costs **< 2%**
  against the un-instrumented seed path (measured on matched medians in
  one process, which cancels machine noise).
* ``test_telemetry_enabled_fan_in_40_nodes`` — the 40-node hub fan-in of
  ``test_bench_hub.py`` with one shared enabled facade across every node
  and the hub: full span tracing + stage histograms + metric collectors at
  fleet scale, wired into ``baseline.json`` so a regression in the
  *enabled* path is caught too.
"""

import asyncio
import statistics
import time

import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.hub import ReceiverHub
from repro.stream.node import CameraNode
from repro.stream.receiver import StreamReceiver
from repro.stream.transport import LoopbackTransport
from repro.telemetry import STAGES, Telemetry

CONFIG = SensorConfig(rows=16, cols=16)
N_FRAMES = 4
SCENES = [make_scene("blobs", (16, 16), seed=index) for index in range(N_FRAMES)]

N_NODES = 40
FLEET_FRAMES = 2
FLEET_SCENES = [make_scene("blobs", (16, 16), seed=index) for index in range(FLEET_FRAMES)]


def _stream_once(telemetry):
    async def scenario():
        transport = LoopbackTransport(max_buffered=8)
        sequencer = VideoSequencer(
            CompressiveImager(CONFIG, seed=7), samples_per_frame=40, seed=7
        )
        node = CameraNode(transport, gop_size=N_FRAMES, telemetry=telemetry)
        receiver = StreamReceiver(reconstruct=False, telemetry=telemetry)
        send = asyncio.create_task(
            node.stream_video(sequencer, SCENES, keep_digital_image=False)
        )
        result = await receiver.run(transport)
        await send
        return result

    return asyncio.run(scenario())


def _median_seconds(fn, *, rounds=9):
    timings = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_disabled_overhead(benchmark):
    """telemetry=None must cost < 2% against the seed (un-instrumented) path.

    The benchmark clock times the ``telemetry=None`` stream (the number the
    regression gate tracks); the inline assertion compares it against an
    enabled facade measured back-to-back in the same process.  The disabled
    path carries only ``if telemetry is not None`` checks, so the enabled
    run bounds it from above: disabled must not exceed enabled by 2%.
    """
    _stream_once(None)  # warm caches before any timing
    result = benchmark.pedantic(lambda: _stream_once(None), rounds=9, iterations=1)
    assert result.n_frames == N_FRAMES

    disabled_median = benchmark.stats.stats.median
    enabled_median = _median_seconds(lambda: _stream_once(Telemetry()))
    overhead = disabled_median / enabled_median - 1.0
    print(
        f"\ntelemetry disabled {disabled_median * 1e3:.2f} ms vs "
        f"enabled {enabled_median * 1e3:.2f} ms ({overhead:+.2%})"
    )
    assert disabled_median < enabled_median * 1.02, (
        f"telemetry=None path is {overhead:+.2%} vs an enabled facade — "
        "the disabled path must be free (contract: < 2%)"
    )


def _run_instrumented_fleet():
    telemetry = Telemetry()

    async def scenario():
        hub = ReceiverHub(reconstruct=False, telemetry=telemetry)

        async def one_node(stream_id):
            transport = LoopbackTransport(max_buffered=4)
            sequencer = VideoSequencer(
                CompressiveImager(CONFIG, seed=stream_id),
                samples_per_frame=40,
                seed=stream_id,
            )
            node = CameraNode(
                transport,
                stream_id=stream_id,
                gop_size=FLEET_FRAMES,
                telemetry=telemetry,
            )
            send = asyncio.create_task(
                node.stream_video(sequencer, FLEET_SCENES, keep_digital_image=False)
            )
            await hub.attach(transport)
            await send

        await asyncio.gather(
            *(one_node(stream_id) for stream_id in range(1, N_NODES + 1))
        )
        await hub.close()
        return hub, telemetry

    return asyncio.run(scenario())


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_enabled_fan_in_40_nodes(benchmark):
    """Fully instrumented 40-node fan-in: spans + histograms + collectors."""
    hub, telemetry = benchmark.pedantic(
        _run_instrumented_fleet, rounds=3, iterations=1
    )
    assert len(hub.completed) == N_NODES
    # Every frame of every stream is traced (reconstruct=False: the four
    # pre-solve stages; queue_wait/solve need a scheduler dispatch).
    assert len(telemetry.tracer) == N_NODES * FLEET_FRAMES
    snapshot = hub.metrics()
    assert snapshot.value("repro_hub_frames_total") == N_NODES * FLEET_FRAMES
    for stage in STAGES[:4]:
        sample = snapshot.get("repro_stage_seconds", {"stage": stage})
        assert sample is not None and sample.count >= N_NODES * FLEET_FRAMES
    streams_per_second = N_NODES / benchmark.stats.stats.median
    print(
        f"\ninstrumented hub fan-in: {streams_per_second:.1f} streams/s "
        f"({N_NODES} nodes x {FLEET_FRAMES} frames, full tracing)"
    )
