"""Row/column selection-signal generation for the full-frame compressive strategy.

In the sensor of Fig. 2 a single 1-D cellular automaton of ``rows + cols``
cells surrounds the pixel array.  At every compressed sample the cells
assigned to the rows drive the row selection lines ``S_i`` and the cells
assigned to the columns drive the column selection lines ``S_j``; pixel
``(i, j)`` contributes to that compressed sample iff ``S_i XOR S_j`` is 1
(the 6-transistor XOR gate of Fig. 1).  Advancing the CA by one (or more)
clock cycles produces the next row of the measurement matrix Φ.

Because the CA is deterministic, the complete Φ is a pure function of the
seed — this is the property the paper exploits to avoid transmitting or
storing Φ.  :class:`CASelectionGenerator` is used both inside the sensor
simulator (to select pixels) and inside the reconstruction pipeline (to
rebuild the very same Φ at the receiver from the seed alone).

Φ is built *batched*: the CA states for a whole frame are evolved in one
pass (:meth:`~repro.ca.automaton.ElementaryCellularAutomaton.evolve_states`)
and expanded into the ``(n_samples, rows*cols)`` selection matrix with a
single broadcast XOR — no per-sample Python objects.  The module-level
:func:`ca_measurement_matrix` is the one shared Φ builder: the sensor's
capture path, the receiver's reconstruction pipeline and the matrix-quality
benchmarks all call it, so the two ends of the channel cannot drift apart.
The per-pattern iterator API (:meth:`CASelectionGenerator.next_pattern`,
:meth:`CASelectionGenerator.patterns`) is kept as a thin view over the same
batched states.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.ca.automaton import BoundaryCondition, ElementaryCellularAutomaton
from repro.ca.rules import RuleTable
from repro.utils.rng import SeedLike, nonzero_seed_bits
from repro.utils.validation import check_binary_array, check_positive


def selection_masks_from_states(states: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Expand a stack of CA states into flattened XOR selection masks.

    ``states`` has shape ``(n_samples, rows + cols)``; the first ``rows``
    cells of each state drive the row lines and the remainder the column
    lines.  The result is the ``(n_samples, rows * cols)`` ``uint8`` slice of
    Φ produced by the ``S_i XOR S_j`` gate of Fig. 1, computed for the whole
    batch with one broadcast XOR.
    """
    states = np.asarray(states, dtype=np.uint8)
    if states.ndim != 2 or states.shape[1] != rows + cols:
        raise ValueError(
            f"states must have shape (n, {rows + cols}), got {states.shape}"
        )
    row_signals = states[:, :rows]
    col_signals = states[:, rows:]
    masks = np.bitwise_xor(row_signals[:, :, None], col_signals[:, None, :])
    return masks.reshape(states.shape[0], rows * cols)


def selection_factors_from_states(
    states: np.ndarray, rows: int, cols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split a stack of CA states into the row/column factors ``(R, C)``.

    ``R`` is the ``(n_samples, rows)`` slice of cells driving the row
    selection lines and ``C`` the ``(n_samples, cols)`` slice driving the
    columns.  These are the *pre-expansion* factors of the measurement
    matrix: ``Φ[i] = R_i ⊕ C_i`` as an outer XOR, equivalently
    ``Φ[i,(r,c)] = R[i,r] + C[i,c] − 2·R[i,r]·C[i,c]`` — the rank-structured
    form both the sensor's batched capture and the receiver's matrix-free
    :class:`~repro.cs.structured.StructuredSensingOperator` compute with
    instead of materialising Φ.
    """
    states = np.asarray(states, dtype=np.uint8)
    if states.ndim != 2 or states.shape[1] != rows + cols:
        raise ValueError(
            f"states must have shape (n, {rows + cols}), got {states.shape}"
        )
    return states[:, :rows].copy(), states[:, rows:].copy()


def _evolved_states(
    n_samples: int,
    rows: int,
    cols: int,
    seed_state: np.ndarray,
    *,
    rule: int | RuleTable,
    steps_per_sample: int,
    warmup_steps: int,
    boundary: BoundaryCondition,
) -> np.ndarray:
    """The shared CA evolution behind the dense and factored Φ builders."""
    check_positive("n_samples", n_samples)
    check_positive("rows", rows)
    check_positive("cols", cols)
    automaton = ElementaryCellularAutomaton(
        rows + cols, rule, seed_state=np.asarray(seed_state), boundary=boundary
    )
    if warmup_steps:
        automaton.step(int(warmup_steps))
    return automaton.evolve_states(int(n_samples), int(steps_per_sample))


def ca_selection_factors(
    n_samples: int,
    rows: int,
    cols: int,
    seed_state: np.ndarray,
    *,
    rule: int | RuleTable = 30,
    steps_per_sample: int = 1,
    warmup_steps: int = 0,
    boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the row/column CA factors ``(R, C)`` of Φ from a seed.

    This is the factored twin of :func:`ca_measurement_matrix`: it runs the
    *same* batched CA evolution but stops before the broadcast-XOR
    expansion, returning the ``(n_samples, rows)`` / ``(n_samples, cols)``
    ``uint8`` factor pair instead of the ``(n_samples, rows*cols)`` dense
    matrix.  ``selection_masks_from_states`` applied to the re-joined
    factors reproduces the dense Φ bit for bit, so the two builders cannot
    drift apart — the recon-equivalence suite pins this.
    """
    states = _evolved_states(
        n_samples,
        rows,
        cols,
        seed_state,
        rule=rule,
        steps_per_sample=steps_per_sample,
        warmup_steps=warmup_steps,
        boundary=boundary,
    )
    return selection_factors_from_states(states, int(rows), int(cols))


def ca_measurement_matrix(
    n_samples: int,
    rows: int,
    cols: int,
    seed_state: np.ndarray,
    *,
    rule: int | RuleTable = 30,
    steps_per_sample: int = 1,
    warmup_steps: int = 0,
    boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
) -> np.ndarray:
    """Build Φ from a CA seed in one batched pass — the shared Φ builder.

    Every consumer of a CA measurement matrix (the sensor capture path, the
    receiver-side :func:`repro.recon.operator.measurement_matrix_from_seed`,
    the CS baselines) routes through this function, which guarantees that the
    matrix used for capture and the matrix rebuilt for reconstruction are the
    same batched computation, bit for bit.

    Parameters
    ----------
    n_samples : int
        Number of selection patterns (rows of Φ) to generate.
    rows, cols : int
        Pixel-array dimensions; the CA ring has ``rows + cols`` cells.
    seed_state : numpy.ndarray
        The CA seed bits, shape ``(rows + cols,)``, values in {0, 1} — the
        side information shared between sensor and receiver.
    rule : int or RuleTable
        CA rule number (30 in the paper).
    steps_per_sample : int
        CA clock cycles between consecutive patterns.
    warmup_steps : int
        CA clock cycles applied once before the first pattern.
    boundary : BoundaryCondition
        Ring boundary condition; the hardware ring is periodic.

    Returns
    -------
    numpy.ndarray
        Φ as a ``(n_samples, rows * cols)`` ``uint8`` 0/1 matrix, pattern
        masks flattened in raster order.
    """
    states = _evolved_states(
        n_samples,
        rows,
        cols,
        seed_state,
        rule=rule,
        steps_per_sample=steps_per_sample,
        warmup_steps=warmup_steps,
        boundary=boundary,
    )
    return selection_masks_from_states(states, int(rows), int(cols))


@dataclass(frozen=True)
class SelectionPattern:
    """One pixel-selection pattern (one row of the measurement matrix).

    Attributes
    ----------
    index:
        Ordinal of the compressed sample this pattern belongs to.
    row_signals, col_signals:
        The CA cell states driving the row / column selection lines.
    mask:
        The ``rows x cols`` binary selection mask ``S_i XOR S_j``.
    """

    index: int
    row_signals: np.ndarray
    col_signals: np.ndarray
    mask: np.ndarray

    @property
    def density(self) -> float:
        """Fraction of selected pixels (the XOR construction targets ~1/2)."""
        return float(np.count_nonzero(self.mask) / self.mask.size)

    def as_vector(self) -> np.ndarray:
        """The mask flattened in raster order — one row of Φ."""
        return self.mask.reshape(-1)


class CASelectionGenerator:
    """Generates successive pixel-selection patterns from a seeded CA.

    Parameters
    ----------
    rows, cols:
        Pixel-array dimensions.  The CA register has ``rows + cols`` cells;
        the first ``rows`` cells drive the row lines, the rest the columns.
    seed_state:
        Explicit CA seed (``rows + cols`` bits).  This is the quantity the
        sensor would share with the receiver.  If omitted, a random non-zero
        seed is drawn from ``seed``.
    rule:
        CA rule; the paper uses Rule 30.
    steps_per_sample:
        How many CA clock cycles separate consecutive selection patterns.
        One step already decorrelates neighbouring patterns for Rule 30;
        larger values trade selection-update time for extra mixing.
    warmup_steps:
        CA clock cycles applied once, before the first pattern, to wash out
        the (possibly low-entropy) seed.
    boundary:
        CA boundary condition; the hardware ring is periodic.
    seed:
        RNG seed used only to draw ``seed_state`` when it is not supplied.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        seed_state: np.ndarray | None = None,
        rule: int | RuleTable = 30,
        steps_per_sample: int = 1,
        warmup_steps: int = 0,
        boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
        seed: SeedLike = None,
    ) -> None:
        check_positive("rows", rows)
        check_positive("cols", cols)
        check_positive("steps_per_sample", steps_per_sample)
        check_positive("warmup_steps", warmup_steps, allow_zero=True)
        self.rows = int(rows)
        self.cols = int(cols)
        self.steps_per_sample = int(steps_per_sample)
        self.warmup_steps = int(warmup_steps)
        n_cells = self.rows + self.cols
        if seed_state is None:
            seed_state = nonzero_seed_bits(n_cells, seed)
        else:
            seed_state = check_binary_array("seed_state", np.asarray(seed_state))
            if seed_state.size != n_cells:
                raise ValueError(
                    f"seed_state must have rows + cols = {n_cells} bits, got {seed_state.size}"
                )
        self._seed_state = seed_state.copy()
        self._automaton = ElementaryCellularAutomaton(
            n_cells, rule, seed_state=seed_state, boundary=boundary
        )
        self._sample_index = 0
        if self.warmup_steps:
            self._automaton.step(self.warmup_steps)

    # ----------------------------------------------------------------- state
    @property
    def seed_state(self) -> np.ndarray:
        """The CA seed — the only thing that must be shared with the receiver."""
        return self._seed_state.copy()

    @property
    def rule(self) -> RuleTable:
        """The CA rule driving the register."""
        return self._automaton.rule

    @property
    def sample_index(self) -> int:
        """Index of the next pattern that :meth:`next_pattern` will produce."""
        return self._sample_index

    def reset(self) -> None:
        """Rewind to the state right after seeding (and warm-up)."""
        self._automaton.reset(self._seed_state)
        if self.warmup_steps:
            self._automaton.step(self.warmup_steps)
        self._sample_index = 0

    # -------------------------------------------------------------- patterns
    def _pattern_from_state(self, state: np.ndarray, index: int) -> SelectionPattern:
        row_signals = state[: self.rows].astype(np.uint8)
        col_signals = state[self.rows:].astype(np.uint8)
        mask = np.bitwise_xor.outer(row_signals, col_signals).astype(np.uint8)
        return SelectionPattern(
            index=index,
            row_signals=row_signals,
            col_signals=col_signals,
            mask=mask,
        )

    def next_states(self, n_patterns: int) -> np.ndarray:
        """Consume the CA states of the next ``n_patterns`` selection patterns.

        Returns the ``(n_patterns, rows + cols)`` ``uint8`` state stack and
        advances the generator exactly as ``n_patterns`` calls of
        :meth:`next_pattern` would: the first state is the current one unless
        patterns have already been consumed, and each subsequent state lies
        ``steps_per_sample`` CA generations further on.  This is the batched
        primitive behind both the capture fast path and the pattern iterator.
        """
        check_positive("n_patterns", n_patterns)
        states = self._automaton.evolve_states(
            int(n_patterns),
            self.steps_per_sample,
            step_before_first=self._sample_index > 0,
        )
        self._sample_index += int(n_patterns)
        return states

    def next_masks(self, n_patterns: int) -> np.ndarray:
        """Consume the next ``n_patterns`` patterns as a flattened-mask batch.

        The result is the ``(n_patterns, rows * cols)`` ``uint8`` slice of Φ
        this generator contributes next — what the batched behavioural
        capture multiplies against the pixel codes.
        """
        return selection_masks_from_states(
            self.next_states(n_patterns), self.rows, self.cols
        )

    def next_pattern(self) -> SelectionPattern:
        """Return the selection pattern for the next compressed sample.

        The first pattern is derived from the post-warm-up seed state itself;
        subsequent patterns advance the CA by ``steps_per_sample`` cycles.
        """
        index = self._sample_index
        state = self.next_states(1)[0]
        return self._pattern_from_state(state, index)

    def patterns(self, n_patterns: int) -> Iterator[SelectionPattern]:
        """Yield the next ``n_patterns`` selection patterns.

        Lazy: the CA advances one pattern per iteration, so a consumer that
        stops early leaves the generator positioned exactly on the last
        pattern it took (the pre-batching contract).  Batch consumers that
        want the whole stretch at once should use :meth:`next_states` /
        :meth:`next_masks`, which evolve it in a single pass.
        """
        check_positive("n_patterns", n_patterns)
        for _ in range(int(n_patterns)):
            yield self.next_pattern()

    def measurement_matrix(self, n_samples: int) -> np.ndarray:
        """Return Φ as an ``n_samples x (rows*cols)`` binary matrix.

        This regenerates the matrix from scratch starting at the seed — in
        one batched pass through :func:`ca_measurement_matrix`, which is
        exactly what the receiving end of the channel does; it does not
        disturb the generator's own position in the sequence.
        """
        return ca_measurement_matrix(
            int(n_samples),
            self.rows,
            self.cols,
            self._seed_state,
            rule=self._automaton.rule,
            steps_per_sample=self.steps_per_sample,
            warmup_steps=self.warmup_steps,
            boundary=self._automaton.boundary,
        )

    def measurement_factors(self, n_samples: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the ``(R, C)`` factor pair of the first ``n_samples`` rows of Φ.

        The factored counterpart of :meth:`measurement_matrix`: same seed,
        same batched CA evolution, but the pre-expansion row/column factors
        instead of the dense matrix — what the matrix-free reconstruction
        operator consumes.  Does not disturb the generator's position.
        """
        return ca_selection_factors(
            int(n_samples),
            self.rows,
            self.cols,
            self._seed_state,
            rule=self._automaton.rule,
            steps_per_sample=self.steps_per_sample,
            warmup_steps=self.warmup_steps,
            boundary=self._automaton.boundary,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CASelectionGenerator(rows={self.rows}, cols={self.cols}, "
            f"rule={self._automaton.rule.number}, steps_per_sample={self.steps_per_sample})"
        )
