"""E14 — sharded tiled-sensor capture throughput.

A single sensor cannot capture a 256x256 scene at the Table II clocks at
all: the 8-bit TDC conversion window (~10.7 µs) no longer fits the
compressed-sample period (~1.3 µs at R = 0.4, 30 fps), and
:class:`~repro.sensor.imager.CompressiveImager` rejects the configuration.
Scaling the architecture is therefore scaling *out* — a mosaic of 64x64
chips capturing concurrently (:class:`~repro.sensor.shard.TiledSensorArray`)
— and these benchmarks track what that buys:

* the ``tiled-capture`` group times the 256x256 mosaic capture serial,
  threaded, and in the float32 fast mode, so CI's regression gate
  (``benchmarks/check_regression.py``) guards the sharded hot path like any
  other;
* ``test_parallel_capture_beats_serial`` asserts the executor actually pays:
  ``max_workers > 1`` must beat ``max_workers = 1`` wall-clock on any
  multi-core machine (it is skipped on single-core runners, where no
  executor can win).
"""

import os
import time

import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.shard import TiledSensorArray

SCENE_SHAPE = (256, 256)


def make_scene_current(shape=SCENE_SHAPE, seed=2018):
    scene = make_scene("natural", shape, seed=seed)
    return PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)


def make_array(**kwargs):
    kwargs.setdefault("seed", 2018)
    return TiledSensorArray(SCENE_SHAPE, tile_shape=(64, 64), **kwargs)


def test_single_sensor_cannot_reach_256x256():
    """The architectural fact the sharded subsystem exists for."""
    with pytest.raises(ValueError, match="conversion window"):
        CompressiveImager(SensorConfig(rows=256, cols=256))


@pytest.mark.benchmark(group="tiled-capture")
def test_tiled_capture_256x256_serial(benchmark):
    """16 tiles of 64x64, captured inline — the max_workers=1 reference."""
    array = make_array(executor="serial")
    current = make_scene_current()
    result = benchmark.pedantic(
        lambda: array.capture(current, keep_digital_image=False),
        rounds=3,
        iterations=1,
    )
    assert result.n_tiles == 16
    assert result.n_samples == 16 * round(0.4 * 64 * 64)


@pytest.mark.benchmark(group="tiled-capture")
def test_tiled_capture_256x256_threaded(benchmark):
    """The same mosaic through a 4-worker thread pool."""
    array = make_array(executor="thread", max_workers=4)
    current = make_scene_current()
    result = benchmark.pedantic(
        lambda: array.capture(current, keep_digital_image=False),
        rounds=3,
        iterations=1,
    )
    assert result.metadata["executor"] == "thread"


@pytest.mark.benchmark(group="tiled-capture")
def test_tiled_capture_256x256_float32(benchmark):
    """The float32 fast mode: single-precision matmuls, expected-LSB model."""
    array = make_array(executor="thread", max_workers=4, dtype="float32")
    current = make_scene_current()
    result = benchmark.pedantic(
        lambda: array.capture(current, keep_digital_image=False),
        rounds=3,
        iterations=1,
    )
    assert result.metadata["dtype"] == "float32"


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel capture cannot beat serial on a single core",
)
def test_parallel_capture_beats_serial():
    """max_workers > 1 must win wall-clock over max_workers = 1.

    Identical captures (the executors are pinned byte-identical by the
    shard test suite), best-of-three to absorb shared-runner noise.  Which
    pool wins is hardware-dependent — threads when the numpy hot path
    releases the GIL cleanly, processes when it does not — so the claim
    gated here is the honest one: the *best parallel* configuration beats
    serial on a multi-core machine.
    """
    current = make_scene_current()
    array = make_array(executor="serial")
    array.capture(current, keep_digital_image=False)  # warm caches

    def best_of(n_rounds, **capture_kwargs):
        elapsed = []
        for _ in range(n_rounds):
            start = time.perf_counter()
            array.capture(current, keep_digital_image=False, **capture_kwargs)
            elapsed.append(time.perf_counter() - start)
        return min(elapsed)

    serial = best_of(3, executor="serial")
    threaded = best_of(3, executor="thread", max_workers=4)
    forked = best_of(3, executor="process", max_workers=4)
    parallel = min(threaded, forked)
    speedup = serial / parallel
    print(
        f"\n256x256 tiled capture: serial {serial * 1e3:.1f} ms, "
        f"4 threads {threaded * 1e3:.1f} ms, 4 processes {forked * 1e3:.1f} ms "
        f"({speedup:.2f}x best-parallel speedup)"
    )
    assert speedup > 1.0
