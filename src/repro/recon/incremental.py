"""Incremental tiled reconstruction: tiles land, the scene fills in.

A streamed mosaic does not arrive as one :class:`~repro.sensor.shard.TiledCaptureResult`
— it arrives tile by tile, and the receiver should start inverting tile
``(0, 0)`` while tile ``(3, 3)`` is still on the wire.
:class:`IncrementalTiledReconstructor` is that receiver-side accumulator:
seeded with nothing but the scene and tile shapes (the two numbers the stream
header carries), it derives the same tile grid the sensor used
(:func:`repro.sensor.shard.tile_grid`), reconstructs each tile through the
ordinary :func:`~repro.recon.pipeline.reconstruct_frame` path as it is added,
stitches it at its scene offset, and finalises into a
:class:`~repro.recon.pipeline.TiledReconstructionResult`.

:func:`repro.recon.pipeline.reconstruct_tiled` is built on this class, so the
in-process and the streamed reconstruction are the *same code path* — a scene
reconstructed from decoded wire chunks is byte-identical to one reconstructed
from the in-memory capture, which is the invariant the streaming end-to-end
tests pin.
"""

from __future__ import annotations


import numpy as np

from repro.cs.metrics import psnr, reconstruction_snr
from repro.cs.operators import StepSizeCache
from repro.recon.batch import batch_group_key, solve_tiles_batched
from repro.recon.pipeline import (
    BATCHABLE_SOLVERS,
    ReconstructionResult,
    TiledReconstructionResult,
    reconstruct_frame,
)
from repro.sensor.imager import CompressedFrame
from repro.sensor.shard import TileSlot, merge_tile_statistics, tile_grid


class IncrementalTiledReconstructor:
    """Reassemble a tiled scene from per-tile frames, one tile at a time.

    Two solve modes share the stitching accumulator:

    * **eager** — :meth:`add_tile` inverts each tile the moment it lands
      (the progressive-quality streaming mode, and the ``serial``/``thread``
      executors of :func:`~repro.recon.pipeline.reconstruct_tiled`);
    * **staged/batched** — :meth:`stage_tile` only records frames and
      :meth:`solve_staged` later inverts every equal-shape group in one
      einsum-driven multi-tile pass (the default for whole-frame
      reconstruction, in-process and at the streaming frame barrier alike).

    Parameters
    ----------
    scene_shape, tile_shape : tuple of int
        Full-scene and nominal tile dimensions; the tile grid (edge tiles
        shrunk to fit) is derived exactly as the capture side derives it.
    dictionary, solver, regularization, sparsity, max_iterations, operator:
        Per-tile reconstruction options, as in
        :func:`~repro.recon.pipeline.reconstruct_frame`.
    step_cache:
        Optional :class:`~repro.cs.operators.StepSizeCache` shared across
        frames so per-tile step sizes are memoised / warm-started along a
        GOP chain.
    """

    def __init__(
        self,
        scene_shape: tuple[int, int],
        tile_shape: tuple[int, int],
        *,
        dictionary: str = "dct",
        solver: str = "fista",
        regularization: float | None = None,
        sparsity: int | None = None,
        max_iterations: int | None = None,
        operator: str = "structured",
        step_cache: StepSizeCache | None = None,
    ) -> None:
        self.scene_shape = (int(scene_shape[0]), int(scene_shape[1]))
        self.tile_shape = (
            min(int(tile_shape[0]), self.scene_shape[0]),
            min(int(tile_shape[1]), self.scene_shape[1]),
        )
        self.dictionary = dictionary
        self.solver = solver
        self.regularization = regularization
        self.sparsity = sparsity
        self.max_iterations = None if max_iterations is None else int(max_iterations)
        self.operator = operator
        self.step_cache = step_cache
        self.slots: list[list[TileSlot]] = tile_grid(self.scene_shape, self.tile_shape)
        grid_rows, grid_cols = self.grid_shape
        self._frames: list[list[CompressedFrame | None]] = [
            [None] * grid_cols for _ in range(grid_rows)
        ]
        self._tile_results: list[list[ReconstructionResult | None]] = [
            [None] * grid_cols for _ in range(grid_rows)
        ]
        self._image = np.zeros(self.scene_shape, dtype=float)
        self._n_completed = 0
        self._staged: list[tuple[int, int, CompressedFrame]] = []

    # ------------------------------------------------------------- geometry
    @property
    def grid_shape(self) -> tuple[int, int]:
        """Tiles per scene edge, ``(grid_rows, grid_cols)``."""
        return (len(self.slots), len(self.slots[0]))

    @property
    def n_tiles(self) -> int:
        """Total number of tiles in the mosaic."""
        grid_rows, grid_cols = self.grid_shape
        return grid_rows * grid_cols

    @property
    def n_completed(self) -> int:
        """Tiles reconstructed and stitched so far."""
        return self._n_completed

    @property
    def is_complete(self) -> bool:
        """True once every tile of the mosaic has landed."""
        return self._n_completed == self.n_tiles

    def slot(self, grid_row: int, grid_col: int) -> TileSlot:
        """The :class:`TileSlot` at a grid position (bounds-checked)."""
        grid_rows, grid_cols = self.grid_shape
        if not (0 <= grid_row < grid_rows and 0 <= grid_col < grid_cols):
            raise ValueError(
                f"tile position ({grid_row}, {grid_col}) outside the "
                f"{grid_rows}x{grid_cols} grid"
            )
        return self.slots[grid_row][grid_col]

    # -------------------------------------------------------------- solving
    def solve_tile(
        self,
        frame: CompressedFrame,
        sample_mask: np.ndarray | None = None,
    ) -> ReconstructionResult:
        """Reconstruct one tile frame with this reconstructor's options.

        Stateless (no stitching): both :meth:`add_tile` and the thread pool
        of :func:`~repro.recon.pipeline.reconstruct_tiled` route through
        this, so there is exactly one per-tile solve path.  ``sample_mask``
        is the lossy-streaming row-survival mask forwarded to
        :func:`~repro.recon.pipeline.reconstruct_frame` (partial-Φ solve).
        """
        return reconstruct_frame(
            frame,
            dictionary=self.dictionary,
            solver=self.solver,
            regularization=self.regularization,
            sparsity=self.sparsity,
            max_iterations=self.max_iterations,
            operator=self.operator,
            step_cache=self.step_cache,
            sample_mask=sample_mask,
        )

    def stage_tile(
        self, grid_row: int, grid_col: int, frame: CompressedFrame
    ) -> None:
        """Record a tile for a later :meth:`solve_staged` batch, solving nothing.

        Geometry and duplicate checks happen now (so malformed tiles fail at
        arrival, exactly as on the eager path); the inverse problem itself
        is deferred until the whole batch is stacked.
        """
        slot = self.slot(grid_row, grid_col)
        if (frame.config.rows, frame.config.cols) != (slot.rows, slot.cols):
            raise ValueError(
                f"tile ({grid_row}, {grid_col}) frame is "
                f"{frame.config.rows}x{frame.config.cols}, slot expects "
                f"{slot.rows}x{slot.cols}"
            )
        if self._frames[grid_row][grid_col] is not None or any(
            (grid_row, grid_col) == (row, col) for row, col, _ in self._staged
        ):
            raise ValueError(f"tile ({grid_row}, {grid_col}) was already added")
        self._staged.append((grid_row, grid_col, frame))

    def solve_staged(self) -> list[ReconstructionResult]:
        """Solve every staged tile and stitch the results into the scene.

        With the structured operator and a FISTA/ISTA solver, every
        equal-geometry group runs through
        :func:`~repro.recon.batch.solve_tiles_batched` — all tiles of a
        group iterated in one einsum pass; odd-shaped edge tiles simply form
        single-tile groups and take the same batched path with ``T = 1``.
        Greedy solvers and the dense operator flavour fall back to the
        ordinary per-tile solve.  Returns the per-tile results in staging
        order.
        """
        staged, self._staged = self._staged, []
        results: list[ReconstructionResult | None] = [None] * len(staged)
        if self.operator == "structured" and self.solver in BATCHABLE_SOLVERS:
            groups: dict[tuple, list[int]] = {}
            for index, (_, _, frame) in enumerate(staged):
                groups.setdefault(batch_group_key(frame), []).append(index)
            for indices in groups.values():
                solved = solve_tiles_batched(
                    [staged[index][2] for index in indices],
                    dictionary=self.dictionary,
                    solver=self.solver,
                    regularization=self.regularization,
                    max_iterations=self.max_iterations,
                    step_cache=self.step_cache,
                )
                for index, result in zip(indices, solved):
                    results[index] = result
        else:
            for index, (_, _, frame) in enumerate(staged):
                results[index] = self.solve_tile(frame)
        for (grid_row, grid_col, frame), result in zip(staged, results):
            self.insert_result(grid_row, grid_col, frame, result)
        return list(results)

    def add_tile(
        self,
        grid_row: int,
        grid_col: int,
        frame: CompressedFrame,
        sample_mask: np.ndarray | None = None,
    ) -> ReconstructionResult:
        """Reconstruct a newly-landed tile and stitch it into the scene.

        Returns the per-tile :class:`ReconstructionResult` so a streaming
        receiver can surface progressive quality while the mosaic fills in.
        ``sample_mask`` forwards a lossy-streaming survival mask to the solve.
        """
        return self.insert_result(
            grid_row, grid_col, frame, self.solve_tile(frame, sample_mask)
        )

    def insert_result(
        self,
        grid_row: int,
        grid_col: int,
        frame: CompressedFrame,
        result: ReconstructionResult,
    ) -> ReconstructionResult:
        """Stitch an already-solved tile (the pre-computed, pooled path)."""
        slot = self.slot(grid_row, grid_col)
        if (frame.config.rows, frame.config.cols) != (slot.rows, slot.cols):
            raise ValueError(
                f"tile ({grid_row}, {grid_col}) frame is "
                f"{frame.config.rows}x{frame.config.cols}, slot expects "
                f"{slot.rows}x{slot.cols}"
            )
        if self._frames[grid_row][grid_col] is not None or any(
            (grid_row, grid_col) == (row, col) for row, col, _ in self._staged
        ):
            raise ValueError(f"tile ({grid_row}, {grid_col}) was already added")
        self._frames[grid_row][grid_col] = frame
        self._tile_results[grid_row][grid_col] = result
        self._image[slot.row_slice, slot.col_slice] = result.image
        self._n_completed += 1
        return result

    # --------------------------------------------------------------- output
    def partial_image(self) -> np.ndarray:
        """The scene as reconstructed so far (zeros where tiles are pending)."""
        return self._image.copy()

    def result(
        self,
        *,
        reference: np.ndarray | None = None,
        capture_metadata: dict[str, object] | None = None,
        partial: bool = False,
    ) -> TiledReconstructionResult:
        """Finalise the mosaic into a :class:`TiledReconstructionResult`.

        Parameters
        ----------
        reference : numpy.ndarray, optional
            Ground-truth code image for scene-level PSNR/SNR.  When omitted,
            the stitched per-tile digital images are used if every added
            frame kept one (never true for frames decoded off the wire — the
            receiver never sees the ground truth).
        capture_metadata : dict, optional
            Mosaic-level capture statistics to attach; defaults to
            :func:`~repro.sensor.shard.merge_tile_statistics` over the added
            frames, which is what the capture side computes.
        partial : bool
            Allow finalising an incomplete mosaic (the lossy-streaming
            graceful-degradation path): missing tiles stay zero in the
            stitched image and ``None`` in ``tile_results`` instead of
            raising.  Defaults to the strict all-tiles contract.
        """
        if not self.is_complete and not partial:
            raise ValueError(
                f"mosaic incomplete: {self.n_completed}/{self.n_tiles} tiles added"
            )
        flat_frames = [
            frame for row in self._frames for frame in row if frame is not None
        ]
        if (
            reference is None
            and self.is_complete
            and all(frame.digital_image is not None for frame in flat_frames)
        ):
            stitched = np.zeros(self.scene_shape, dtype=float)
            for slot_row, frame_row in zip(self.slots, self._frames):
                for slot, frame in zip(slot_row, frame_row):
                    stitched[slot.row_slice, slot.col_slice] = frame.digital_image
            reference = stitched
        metrics: dict[str, float] = {}
        if reference is not None:
            reference = np.asarray(reference, dtype=float)
            metrics = {
                "psnr_db": psnr(reference, self._image),
                "snr_db": reconstruction_snr(reference, self._image),
            }
        if capture_metadata is None:
            capture_metadata = (
                merge_tile_statistics(flat_frames) if flat_frames else {}
            )
        return TiledReconstructionResult(
            image=self._image.copy(),
            tile_results=[list(row) for row in self._tile_results],
            dictionary=self.dictionary,
            solver=self.solver,
            metrics=metrics,
            capture_metadata=dict(capture_metadata),
        )
