"""Tests for the image-quality and recovery metrics."""

import numpy as np
import pytest

from repro.cs.metrics import mse, nmse, psnr, reconstruction_snr, ssim, support_recovery_rate


class TestMseNmse:
    def test_identical_images(self):
        image = np.random.default_rng(0).random((8, 8))
        assert mse(image, image) == 0.0
        assert nmse(image, image) == 0.0

    def test_known_mse(self):
        assert mse(np.zeros((2, 2)), np.ones((2, 2))) == 1.0

    def test_nmse_normalisation(self):
        reference = np.full((4, 4), 2.0)
        estimate = np.full((4, 4), 1.0)
        assert nmse(reference, estimate) == pytest.approx(0.25)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))


class TestPsnr:
    def test_perfect_reconstruction_is_infinite(self):
        image = np.random.default_rng(1).random((8, 8))
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        reference = np.zeros((4, 4))
        estimate = np.full((4, 4), 0.1)
        assert psnr(reference, estimate, data_range=1.0) == pytest.approx(20.0)

    def test_higher_noise_lower_psnr(self):
        rng = np.random.default_rng(2)
        image = rng.random((16, 16))
        small = image + 0.01 * rng.standard_normal(image.shape)
        large = image + 0.1 * rng.standard_normal(image.shape)
        assert psnr(image, small) > psnr(image, large)

    def test_snr_consistent_with_nmse(self):
        rng = np.random.default_rng(3)
        reference = rng.random((8, 8)) + 1.0
        estimate = reference + 0.05
        expected = -10 * np.log10(nmse(reference, estimate))
        assert reconstruction_snr(reference, estimate) == pytest.approx(expected)


class TestSsim:
    def test_identical_images_score_one(self):
        image = np.random.default_rng(4).random((16, 16))
        assert ssim(image, image) == pytest.approx(1.0)

    def test_noisy_image_scores_lower(self):
        rng = np.random.default_rng(5)
        image = rng.random((32, 32))
        noisy = image + 0.3 * rng.standard_normal(image.shape)
        assert ssim(image, noisy) < 0.9

    def test_monotone_in_noise(self):
        rng = np.random.default_rng(6)
        image = rng.random((32, 32))
        a = ssim(image, image + 0.05 * rng.standard_normal(image.shape))
        b = ssim(image, image + 0.5 * rng.standard_normal(image.shape))
        assert a > b

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            ssim(np.zeros(16), np.zeros(16))

    def test_window_larger_than_image_is_clamped(self):
        image = np.random.default_rng(7).random((4, 4))
        assert ssim(image, image, window=16) == pytest.approx(1.0)


class TestSupportRecovery:
    def test_perfect_support(self):
        truth = np.zeros(20)
        truth[[1, 5, 9]] = 1.0
        estimate = truth + 0.01
        assert support_recovery_rate(truth, estimate, sparsity=3) == pytest.approx(1.0)

    def test_partial_support(self):
        truth = np.zeros(10)
        truth[[0, 1]] = 1.0
        estimate = np.zeros(10)
        estimate[[0, 5]] = 1.0
        assert support_recovery_rate(truth, estimate, sparsity=2) == pytest.approx(0.5)

    def test_empty_true_support(self):
        assert support_recovery_rate(np.zeros(5), np.ones(5)) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            support_recovery_rate(np.zeros(5), np.zeros(6))
