"""E11 — §II-E: losslessness of the column-bus token protocol.

The protocol's promise is that near-simultaneous pixel events are serialised
rather than lost.  This benchmark stresses one column with increasingly dense
event patterns (up to all 64 pixels firing in the same nanosecond), checks
that every event is delivered exactly once with no bus overlap, and reports
the queueing statistics; it also benchmarks the event-accurate capture mode of
the full imager against its behavioural mode.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.pixel.event import PixelEvent
from repro.sensor.column_bus import ColumnBusArbiter
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


def stress_column(n_events, spread, event_duration=5e-9, seed=0):
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.0, spread, size=n_events)
    events = [PixelEvent(row=row, col=0, fire_time=t) for row, t in enumerate(times)]
    result = ColumnBusArbiter(event_duration=event_duration).arbitrate(events)
    emits = sorted(e.emit_time for e in result.events)
    min_gap = min((b - a for a, b in zip(emits, emits[1:])), default=float("inf"))
    return {
        "n_events": n_events,
        "spread_us": spread * 1e6,
        "delivered": result.n_events,
        "queued": result.n_queued,
        "max_delay_ns": result.max_queue_delay * 1e9,
        "min_bus_gap_ns": min_gap * 1e9,
    }


def test_token_protocol_never_loses_events(benchmark):
    scenarios = [(16, 10e-6), (32, 1e-6), (64, 100e-9), (64, 1e-9)]

    rows = benchmark.pedantic(
        lambda: [stress_column(n, spread, seed=i) for i, (n, spread) in enumerate(scenarios)],
        rounds=1, iterations=1,
    )
    print_table("Token protocol under increasing contention", rows)
    for row in rows:
        assert row["delivered"] == row["n_events"]          # nothing lost
        assert row["min_bus_gap_ns"] >= 5.0 - 1e-6          # never two events at once
    # Contention grows monotonically with density.
    assert rows[-1]["queued"] >= rows[0]["queued"]


def test_token_protocol_event_accurate_capture(benchmark):
    """Event-accurate capture agrees with Φx up to the queueing-induced LSB errors."""
    config = SensorConfig(rows=32, cols=32)
    imager = CompressiveImager(config, seed=11)
    scene = make_scene("blobs", (32, 32), seed=11)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)

    event_frame = benchmark.pedantic(
        lambda: imager.capture(current, n_samples=32, fidelity="event"),
        rounds=1, iterations=1,
    )
    reference_frame = imager.capture(current, n_samples=32, lsb_error=False)

    relative = np.abs(event_frame.samples - reference_frame.samples) / reference_frame.samples
    rows = [
        {"quantity": "events lost", "value": event_frame.metadata["n_lost_events"]},
        {"quantity": "events queued", "value": event_frame.metadata["n_queued_events"]},
        {"quantity": "LSB errors", "value": event_frame.metadata["n_lsb_errors"]},
        {"quantity": "max relative sample error", "value": float(relative.max())},
    ]
    print_table("Event-accurate capture vs ideal Φx", rows)
    assert event_frame.metadata["n_lost_events"] == 0
    assert relative.max() < 0.02
