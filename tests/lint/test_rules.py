"""Fixture tests: one minimal violating snippet per rule id.

Each fixture is linted as an in-memory module placed at a library path, and
the test asserts (a) the finding carries the right rule id and file:line,
and (b) the finding disappears when that one rule is disabled — proving the
finding comes from the rule under test and not a neighbour.
"""

from __future__ import annotations

import pytest

from repro._lint import RULES, lint_source
from repro._lint.engine import SUPPRESSION_RULE_ID


def _without(rule_id):
    return [rule for rule in RULES if rule.rule_id != rule_id]


def _findings(source, path, rule_id):
    """Lint with all rules, and again with ``rule_id`` disabled."""
    full = lint_source(source, path)
    reduced = lint_source(source, path, rules=_without(rule_id))
    return full, reduced


# ---------------------------------------------------------------- REPRO001
SHARED_PHI_OUTER = """\
import numpy as np

def build_phi(rows, cols):
    masks = np.bitwise_xor.outer(rows, cols)
    return masks
"""

SHARED_PHI_BROADCAST = """\
import numpy as np

def build_phi(row_signals, col_signals):
    return np.bitwise_xor(row_signals[:, :, None], col_signals[:, None, :])
"""

SHARED_PHI_EVOLVE = """\
def expand(automaton, n):
    return automaton.evolve_states(n, 1)
"""


class TestSharedPhi:
    def test_outer_xor_flagged_with_position(self):
        full, reduced = _findings(
            SHARED_PHI_OUTER, "src/repro/recon/rogue.py", "REPRO001"
        )
        assert [f.rule_id for f in full] == ["REPRO001"]
        assert full[0].path == "src/repro/recon/rogue.py"
        assert full[0].line == 4
        assert reduced == []

    def test_broadcast_xor_flagged(self):
        full, reduced = _findings(
            SHARED_PHI_BROADCAST, "src/repro/sensor/rogue.py", "REPRO001"
        )
        assert [f.rule_id for f in full] == ["REPRO001"]
        assert full[0].line == 4
        assert reduced == []

    def test_direct_state_expansion_flagged(self):
        full, reduced = _findings(
            SHARED_PHI_EVOLVE, "src/repro/sensor/rogue.py", "REPRO001"
        )
        assert [f.rule_id for f in full] == ["REPRO001"]
        assert full[0].line == 2
        assert reduced == []

    def test_allowed_in_the_shared_builder(self):
        assert lint_source(SHARED_PHI_OUTER, "src/repro/ca/selection.py") == []

    def test_allowed_in_tests(self):
        assert lint_source(SHARED_PHI_OUTER, "tests/ca/test_rogue.py") == []


# ---------------------------------------------------------------- REPRO002
DENSE_PHI = """\
def hot_path(operator, y):
    matrix = operator.phi
    return matrix.T @ y
"""


class TestDensePhi:
    def test_phi_materialisation_flagged(self):
        full, reduced = _findings(DENSE_PHI, "src/repro/recon/rogue.py", "REPRO002")
        assert [f.rule_id for f in full] == ["REPRO002"]
        assert full[0].line == 2
        assert reduced == []

    def test_allowed_in_operator_modules_and_tests(self):
        assert lint_source(DENSE_PHI, "src/repro/cs/operators.py") == []
        assert lint_source(DENSE_PHI, "src/repro/cs/structured.py") == []
        assert lint_source(DENSE_PHI, "tests/cs/test_rogue.py") == []

    def test_phi_store_not_flagged(self):
        source = "def init(self, phi):\n    self.phi = phi\n"
        findings = lint_source(source, "src/repro/recon/rogue.py")
        # Assignment is a Store context; only loads materialise.
        assert [f.rule_id for f in findings] == []


# ---------------------------------------------------------------- REPRO003
RNG_GLOBAL = """\
import numpy as np

def jitter(n):
    np.random.seed(0)
    return np.random.rand(n)
"""

RNG_UNSEEDED = """\
import numpy as np

def fresh():
    return np.random.default_rng()
"""

RNG_STDLIB = """\
import random

def pick(items):
    return random.choice(items)
"""


class TestRngDiscipline:
    def test_global_state_calls_flagged(self):
        full, reduced = _findings(RNG_GLOBAL, "src/repro/sensor/rogue.py", "REPRO003")
        assert [f.rule_id for f in full] == ["REPRO003", "REPRO003"]
        assert [f.line for f in full] == [4, 5]
        assert reduced == []

    def test_unseeded_default_rng_flagged(self):
        full, reduced = _findings(
            RNG_UNSEEDED, "src/repro/optics/rogue.py", "REPRO003"
        )
        assert [f.rule_id for f in full] == ["REPRO003"]
        assert full[0].line == 4
        assert reduced == []

    def test_stdlib_random_flagged(self):
        full, reduced = _findings(RNG_STDLIB, "src/repro/cs/rogue.py", "REPRO003")
        assert [f.rule_id for f in full] == ["REPRO003"]
        assert reduced == []

    def test_seeded_default_rng_allowed(self):
        source = (
            "import numpy as np\n\n"
            "def draw(seed):\n"
            "    return np.random.default_rng(seed).standard_normal(4)\n"
        )
        assert lint_source(source, "src/repro/cs/rogue.py") == []

    def test_rng_funnel_module_exempt(self):
        assert lint_source(RNG_UNSEEDED, "src/repro/utils/rng.py") == []

    def test_tests_exempt(self):
        assert lint_source(RNG_GLOBAL, "tests/sensor/test_rogue.py") == []


# ---------------------------------------------------------------- REPRO004
ASYNC_SLEEP = """\
import time

async def pump(transport):
    time.sleep(0.1)
    await transport.send(b"x")
"""

ASYNC_CAPTURE = """\
async def stream_one(self, imager, scene):
    frame = imager.capture_scene(scene)
    await self.transport.send(frame)
"""

ASYNC_EXECUTOR_OK = """\
import asyncio

async def stream_one(self, imager, scene):
    loop = asyncio.get_running_loop()
    frame = await loop.run_in_executor(None, lambda: imager.capture_scene(scene))
    await self.transport.send(frame)
"""


class TestAsyncHygiene:
    def test_sleep_in_async_flagged(self):
        full, reduced = _findings(
            ASYNC_SLEEP, "src/repro/stream/rogue.py", "REPRO004"
        )
        assert [f.rule_id for f in full] == ["REPRO004"]
        assert full[0].line == 4
        assert reduced == []

    def test_direct_capture_in_async_flagged(self):
        full, reduced = _findings(
            ASYNC_CAPTURE, "src/repro/stream/rogue.py", "REPRO004"
        )
        assert [f.rule_id for f in full] == ["REPRO004"]
        assert full[0].line == 2
        assert reduced == []

    def test_executor_dispatch_allowed(self):
        assert lint_source(ASYNC_EXECUTOR_OK, "src/repro/stream/rogue.py") == []

    def test_only_stream_modules_in_scope(self):
        # A capture helper elsewhere is not event-loop code.
        assert lint_source(ASYNC_SLEEP, "src/repro/sensor/rogue.py") == []


# ---------------------------------------------------------------- REPRO005
WIRE_EDIT = """\
FRAME_MAGIC = 0xC6
FRAME_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
FLAG_HAS_SEED = 0x01
FLAG_HAS_STATS = 0x02
_HEADER_FIELDS = (("rows", 12),)
STAT_KEYS = ("n_lsb_errors",)
_CATEGORICAL_KEYS = (("fidelity", ("behavioural", "event")),)
"""

WIRE_DELETED = """\
FRAME_MAGIC = 0xC5
"""


class TestFrozenWire:
    def test_layout_edit_flagged(self):
        full, reduced = _findings(WIRE_EDIT, "src/repro/io/framing.py", "REPRO005")
        assert [f.rule_id for f in full] == ["REPRO005"]
        assert full[0].line == 1
        assert "version byte" in full[0].hint
        assert reduced == []

    def test_deleted_constant_flagged(self):
        full, reduced = _findings(
            WIRE_DELETED, "src/repro/io/framing.py", "REPRO005"
        )
        assert [f.rule_id for f in full] == ["REPRO005"]
        assert "missing" in full[0].message
        assert reduced == []

    def test_real_modules_match_their_pins(self):
        import pathlib

        for rel in ("repro/io/framing.py", "repro/stream/protocol.py"):
            source = (pathlib.Path("src") / rel).read_text(encoding="utf-8")
            assert lint_source(source, f"src/{rel}") == [], (
                f"{rel} drifted from its pinned wire fingerprint"
            )


# ---------------------------------------------------------------- REPRO006
TIMING_MODULE = """\
import time

def stamp(events):
    started = time.monotonic()
    events.append(time.time())
    return time.perf_counter() - started
"""

TIMING_FROM_IMPORT = """\
from time import monotonic as tick

def stamp():
    return tick()
"""

TIMING_LOOP = """\
import asyncio

async def stamp(loop):
    direct = asyncio.get_running_loop().time()
    return direct - loop.time()
"""

TIMING_INJECTED_OK = """\
def stamp(clock):
    return clock.now()
"""


class TestTimingDiscipline:
    def test_time_module_reads_flagged(self):
        full, reduced = _findings(
            TIMING_MODULE, "src/repro/stream/rogue.py", "REPRO006"
        )
        assert [f.rule_id for f in full] == ["REPRO006"] * 3
        assert [f.line for f in full] == [4, 5, 6]
        assert reduced == []

    def test_from_import_alias_flagged(self):
        full, reduced = _findings(
            TIMING_FROM_IMPORT, "src/repro/sensor/rogue.py", "REPRO006"
        )
        assert [f.rule_id for f in full] == ["REPRO006"]
        assert "time.monotonic" in full[0].message
        assert reduced == []

    def test_event_loop_clock_flagged(self):
        full, reduced = _findings(TIMING_LOOP, "src/repro/stream/rogue.py", "REPRO006")
        assert [f.rule_id for f in full] == ["REPRO006", "REPRO006"]
        assert [f.line for f in full] == [4, 5]
        assert reduced == []

    def test_injected_clock_allowed(self):
        assert lint_source(TIMING_INJECTED_OK, "src/repro/stream/rogue.py") == []

    def test_sleep_is_not_a_clock_read(self):
        source = "import time\n\ndef nap():\n    time.sleep(0.1)\n"
        findings = lint_source(source, "src/repro/sensor/rogue.py")
        assert "REPRO006" not in {f.rule_id for f in findings}

    def test_telemetry_funnel_exempt(self):
        assert lint_source(TIMING_MODULE, "src/repro/telemetry/clock.py") == []
        assert lint_source(TIMING_MODULE, "src/repro/telemetry/rogue.py") == []

    def test_tests_exempt(self):
        assert lint_source(TIMING_MODULE, "tests/stream/test_rogue.py") == []


# ------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_justified_suppression_silences_the_finding(self):
        source = (
            "import numpy as np\n\n"
            "def jitter(n):\n"
            "    return np.random.rand(n)"
            "  # repro-lint: allow=REPRO003 -- demo of legacy behaviour\n"
        )
        assert lint_source(source, "src/repro/sensor/rogue.py") == []

    def test_unjustified_suppression_is_its_own_finding(self):
        source = (
            "import numpy as np\n\n"
            "def jitter(n):\n"
            "    return np.random.rand(n)  # repro-lint: allow=REPRO003\n"
        )
        findings = lint_source(source, "src/repro/sensor/rogue.py")
        assert SUPPRESSION_RULE_ID in {f.rule_id for f in findings}
        # The original finding is NOT silenced by a justification-less allow.
        assert "REPRO003" in {f.rule_id for f in findings}

    def test_suppression_only_covers_its_rule(self):
        source = (
            "import numpy as np\n\n"
            "def jitter(n):\n"
            "    return np.random.rand(n)"
            "  # repro-lint: allow=REPRO001 -- wrong rule id\n"
        )
        findings = lint_source(source, "src/repro/sensor/rogue.py")
        assert [f.rule_id for f in findings] == ["REPRO003"]


# ------------------------------------------------------------------- meta
def test_every_rule_id_has_a_fixture():
    """The six contracts stay demonstrated: one fixture class per rule."""
    covered = {
        "REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005", "REPRO006",
    }
    assert {rule.rule_id for rule in RULES} == covered


@pytest.mark.parametrize("rule", RULES, ids=lambda rule: rule.rule_id)
def test_rules_have_contract_docs(rule):
    assert rule.contract, f"{rule.rule_id} is missing its contract line"
