"""Tests for code <-> intensity calibration."""

import numpy as np
import pytest

from repro.pixel.comparator import Comparator
from repro.pixel.photodiode import Photodiode
from repro.pixel.time_encoder import TimeEncoder
from repro.recon.calibration import codes_to_intensity, intensity_to_codes
from repro.sensor.tdc import GlobalCounterTDC


def ideal_chain():
    encoder = TimeEncoder(
        photodiode=Photodiode(capacitance=10e-15, reset_voltage=3.3),
        comparator=Comparator(offset_sigma=0.0, delay=0.0),
        reference_voltage=3.2,  # small swing so currents of ~1 nA land mid-range
    )
    tdc = GlobalCounterTDC()
    return encoder, tdc


class TestForwardMap:
    def test_brighter_pixels_get_smaller_codes(self):
        encoder, tdc = ideal_chain()
        currents = np.array([[0.5e-9, 2e-9]])
        codes = intensity_to_codes(currents, encoder=encoder, tdc=tdc)
        assert codes[0, 1] < codes[0, 0]

    def test_zero_current_saturates(self):
        encoder, tdc = ideal_chain()
        codes = intensity_to_codes(np.array([[0.0]]), encoder=encoder, tdc=tdc)
        assert codes[0, 0] == tdc.max_code


class TestInverseMap:
    def test_round_trip_recovers_current_within_quantization(self):
        encoder, tdc = ideal_chain()
        currents = np.linspace(0.3e-9, 3e-9, 32).reshape(4, 8)
        codes = intensity_to_codes(currents, encoder=encoder, tdc=tdc)
        recovered = codes_to_intensity(codes, encoder=encoder, tdc=tdc)
        # One-LSB time quantisation translates into a bounded relative current error.
        relative_error = np.abs(recovered - currents) / currents
        assert np.median(relative_error) < 0.1

    def test_normalised_output(self):
        encoder, tdc = ideal_chain()
        currents = np.array([[1e-9, 2e-9]])
        codes = intensity_to_codes(currents, encoder=encoder, tdc=tdc)
        normalised = codes_to_intensity(
            codes, encoder=encoder, tdc=tdc, full_scale_current=2e-9
        )
        assert normalised.max() <= 1.5
        assert normalised[0, 1] > normalised[0, 0]

    def test_monotone_inversion(self):
        encoder, tdc = ideal_chain()
        codes = np.array([[10.0, 100.0, 250.0]])
        intensity = codes_to_intensity(codes, encoder=encoder, tdc=tdc)
        assert intensity[0, 0] > intensity[0, 1] > intensity[0, 2]

    def test_invalid_full_scale_rejected(self):
        encoder, tdc = ideal_chain()
        with pytest.raises(ValueError):
            codes_to_intensity(np.array([[1.0]]), encoder=encoder, tdc=tdc, full_scale_current=0.0)
