"""E12 — simulator throughput.

Not a paper artefact, but the practical figure a user of this library cares
about: how fast the behavioural and event-accurate sensor models run, and how
long a full capture-plus-reconstruction cycle takes at the prototype's native
resolution.  These numbers also make regressions in the hot paths visible.
"""

import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_frame
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


def make_inputs(rows=64, cols=64, seed=2018):
    config = SensorConfig(rows=rows, cols=cols)
    imager = CompressiveImager(config, seed=seed)
    scene = make_scene("natural", (rows, cols), seed=seed)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    return imager, current


@pytest.mark.benchmark(group="throughput")
def test_throughput_behavioural_capture_64x64(benchmark):
    imager, current = make_inputs()
    frame = benchmark(lambda: imager.capture(current, n_samples=512))
    assert frame.n_samples == 512


@pytest.mark.benchmark(group="throughput")
def test_throughput_event_accurate_capture_32x32(benchmark):
    imager, current = make_inputs(rows=32, cols=32)
    frame = benchmark.pedantic(
        lambda: imager.capture(current, n_samples=16, fidelity="event"),
        rounds=3, iterations=1,
    )
    assert frame.metadata["n_lost_events"] == 0


@pytest.mark.benchmark(group="throughput")
def test_throughput_capture_and_reconstruct_cycle(benchmark):
    imager, current = make_inputs()

    def cycle():
        frame = imager.capture(current, n_samples=1024)
        return reconstruct_frame(frame, max_iterations=100)

    result = benchmark.pedantic(cycle, rounds=1, iterations=1)
    assert result.metrics["psnr_db"] > 22.0


@pytest.mark.benchmark(group="throughput")
def test_throughput_measurement_matrix_generation(benchmark):
    """Regenerating Φ from the seed (the receiver's first step) for a full frame."""
    imager, current = make_inputs()
    frame = imager.capture(current, n_samples=imager.config.samples_per_frame)
    phi = benchmark.pedantic(frame.measurement_matrix, rounds=1, iterations=1)
    assert phi.shape == (frame.n_samples, 4096)
