"""One-dimensional cellular automata.

The paper generates its full-frame compressive strategy Φ with a radius-1
elementary cellular automaton running Rule 30 around the pixel array
(Section II-B / III-A, Fig. 3, Table I).  This package implements:

* :mod:`repro.ca.rules` — Wolfram-coded elementary rules as truth tables.
* :mod:`repro.ca.automaton` — an elementary CA engine with ring or fixed
  boundaries, vectorised over the whole register.
* :mod:`repro.ca.rule30` — the gate-level Rule 30 cell of Fig. 3 (``NS =
  L XOR (S OR R)``) and a register built from such cells, used to show the
  gate network matches the Table I truth table bit-for-bit.
* :mod:`repro.ca.analysis` — sequence statistics used to argue class-III
  (aperiodic) behaviour: cycle detection, bit balance, entropy and
  autocorrelation.
* :mod:`repro.ca.selection` — the row/column selection-signal generator that
  surrounds the array in Fig. 2 and the XOR combination producing the
  full-frame selection mask.
"""

from repro.ca.analysis import (
    bit_balance,
    detect_cycle,
    sequence_entropy,
    spatial_entropy,
    temporal_autocorrelation,
)
from repro.ca.automaton import BoundaryCondition, ElementaryCellularAutomaton
from repro.ca.rule30 import Rule30Cell, Rule30Register, rule30_next_state
from repro.ca.rules import RULE_30, RULE_90, RULE_110, RULE_184, RuleTable
from repro.ca.selection import (
    CASelectionGenerator,
    SelectionPattern,
    ca_measurement_matrix,
    selection_masks_from_states,
)

__all__ = [
    "BoundaryCondition",
    "ElementaryCellularAutomaton",
    "RuleTable",
    "RULE_30",
    "RULE_90",
    "RULE_110",
    "RULE_184",
    "Rule30Cell",
    "Rule30Register",
    "rule30_next_state",
    "CASelectionGenerator",
    "SelectionPattern",
    "ca_measurement_matrix",
    "selection_masks_from_states",
    "bit_balance",
    "detect_cycle",
    "sequence_entropy",
    "spatial_entropy",
    "temporal_autocorrelation",
]
