"""Tests for the sensing operator A = Φ Ψ."""

import numpy as np
import pytest

from repro.cs.dictionaries import DCT2Dictionary, IdentityDictionary
from repro.cs.matrices import bernoulli_matrix, gaussian_matrix
from repro.cs.operators import SensingOperator


class TestConstruction:
    def test_infers_identity_dictionary_for_square_pixel_count(self):
        operator = SensingOperator(np.zeros((5, 16)))
        assert isinstance(operator.dictionary, IdentityDictionary)
        assert operator.dictionary.shape == (4, 4)

    def test_non_square_without_dictionary_uses_1d_identity(self):
        operator = SensingOperator(np.zeros((5, 12)))
        assert isinstance(operator.dictionary, IdentityDictionary)
        assert operator.dictionary.shape == (12, 1)

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            SensingOperator(np.zeros((5, 16)), DCT2Dictionary((8, 8)))

    def test_shape_properties(self):
        operator = SensingOperator(np.zeros((5, 16)), DCT2Dictionary((4, 4)))
        assert operator.shape == (5, 16)
        assert operator.n_samples == 5
        assert operator.n_coefficients == 16


class TestProducts:
    def test_matvec_matches_dense(self):
        phi = gaussian_matrix(12, 64, seed=0)
        operator = SensingOperator(phi, DCT2Dictionary((8, 8)))
        dense = operator.dense()
        rng = np.random.default_rng(1)
        z = rng.standard_normal(64)
        assert np.allclose(operator.matvec(z), dense @ z)

    def test_rmatvec_is_adjoint_of_matvec(self):
        """<A z, y> == <z, A* y> for random vectors — the adjoint test."""
        phi = gaussian_matrix(20, 64, seed=2)
        operator = SensingOperator(phi, DCT2Dictionary((8, 8)))
        rng = np.random.default_rng(3)
        z = rng.standard_normal(64)
        y = rng.standard_normal(20)
        assert np.dot(operator.matvec(z), y) == pytest.approx(np.dot(z, operator.rmatvec(y)))

    def test_column_matches_dense_column(self):
        phi = bernoulli_matrix(10, 16, seed=4)
        operator = SensingOperator(phi, DCT2Dictionary((4, 4)))
        dense = operator.dense()
        for index in (0, 5, 15):
            assert np.allclose(operator.column(index), dense[:, index])

    def test_columns_subset(self):
        phi = bernoulli_matrix(10, 16, seed=5)
        operator = SensingOperator(phi, DCT2Dictionary((4, 4)))
        submatrix = operator.columns([1, 3, 7])
        assert submatrix.shape == (10, 3)
        assert np.allclose(submatrix[:, 1], operator.column(3))

    def test_rmatvec_rejects_wrong_length(self):
        operator = SensingOperator(np.zeros((5, 16)))
        with pytest.raises(ValueError):
            operator.rmatvec(np.zeros(6))


class TestNormAndImages:
    def test_operator_norm_matches_svd(self):
        phi = gaussian_matrix(20, 36, seed=6)
        operator = SensingOperator(phi, DCT2Dictionary((6, 6)))
        exact = np.linalg.svd(operator.dense(), compute_uv=False)[0]
        assert operator.operator_norm(n_iterations=100) == pytest.approx(exact, rel=1e-3)

    def test_identity_dictionary_norm_equals_phi_norm(self):
        phi = gaussian_matrix(15, 25, seed=7)
        operator = SensingOperator(phi, IdentityDictionary((5, 5)))
        exact = np.linalg.svd(phi, compute_uv=False)[0]
        assert operator.operator_norm(n_iterations=100) == pytest.approx(exact, rel=1e-3)

    def test_coefficients_to_image_round_trip(self):
        operator = SensingOperator(np.zeros((3, 64)), DCT2Dictionary((8, 8)))
        rng = np.random.default_rng(8)
        image = rng.standard_normal((8, 8))
        coefficients = operator.image_to_coefficients(image)
        assert np.allclose(operator.coefficients_to_image(coefficients), image)
