"""Runnable demo: scraping a live, fully instrumented ingest fleet.

A small fleet of camera nodes streams into one :class:`ReceiverHub` with a
shared :class:`~repro.telemetry.Telemetry` facade wired through every layer,
so each frame carries a six-stage lifecycle trace (capture → encode →
transport → decode → queue_wait → solve) and every hub/session counter
lands on the metrics registry.  While the fleet runs, the demo:

* scrapes ``GET /metrics`` from the hub's HTTP endpoint — the exact text a
  Prometheus server would ingest — and parses a few headline series back;
* prints the per-stage latency summary from the ``repro_stage_seconds``
  histogram;
* ranks the top-N slowest frames from the tracer and prints their traces,
  the first thing an operator looks at when one camera lags the fleet.

See docs/OPERATIONS.md ("Observability") for the full metric catalog and
how to read a frame trace.

Run:  python examples/observability.py
"""

import asyncio

from repro import (
    CameraNode,
    CompressiveImager,
    LoopbackTransport,
    ReceiverHub,
    SensorConfig,
    make_scene,
)
from repro.sensor.video import VideoSequencer
from repro.telemetry import STAGES, Telemetry, parse_prometheus

N_NODES = 6
N_FRAMES = 2
TOP_N = 3
CONFIG = SensorConfig(rows=16, cols=16)
SCENES = [make_scene("blobs", (16, 16), seed=index) for index in range(N_FRAMES)]


async def scrape(port, path="/metrics"):
    """One HTTP GET against the hub's scrape endpoint; returns the body."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw.partition(b"\r\n\r\n")[2].decode("utf-8")


async def instrumented_fleet(telemetry):
    """N instrumented nodes over loopback, metrics endpoint open throughout."""
    hub = ReceiverHub(solver="fista", max_iterations=5, telemetry=telemetry)
    await hub.serve_metrics()

    async def one_node(stream_id):
        transport = LoopbackTransport(max_buffered=4)
        sequencer = VideoSequencer(
            CompressiveImager(CONFIG, seed=stream_id),
            samples_per_frame=40,
            seed=stream_id,
        )
        node = CameraNode(
            transport, stream_id=stream_id, gop_size=N_FRAMES, telemetry=telemetry
        )
        send = asyncio.create_task(node.stream_video(sequencer, SCENES))
        await hub.attach(transport)
        await send

    await asyncio.gather(*(one_node(n) for n in range(1, N_NODES + 1)))
    exposition = await scrape(hub.metrics_port)
    await hub.close()
    return hub, exposition


def main() -> None:
    print(f"Streaming {N_NODES} instrumented nodes x {N_FRAMES} frames "
          "into one hub, scraping it live\n")
    telemetry = Telemetry()
    hub, exposition = asyncio.run(instrumented_fleet(telemetry))

    # What Prometheus would have ingested from GET /metrics.
    series = parse_prometheus(exposition)
    frames = series[("repro_hub_frames_total", ())]
    streams = series[("repro_hub_streams_completed_total", ())]
    p99 = series[("repro_hub_frame_latency_quantile_seconds", (("quantile", "0.99"),))]
    print(f"scraped :{hub.metrics_port}/metrics — {len(series)} series")
    print(f"  streams completed   {streams:.0f}")
    print(f"  frames decoded      {frames:.0f}")
    print(f"  p99 frame latency   {p99 * 1e3:.2f} ms")

    # Per-stage latency from the shared stage histogram.
    snapshot = telemetry.metrics()
    print("\nmean seconds per pipeline stage:")
    for stage in STAGES:
        sample = snapshot.get("repro_stage_seconds", {"stage": stage})
        if sample is not None and sample.count:
            print(f"  {stage:<10} {sample.sum / sample.count * 1e3:8.3f} ms "
                  f"(n={sample.count})")

    # The operator's first question: which frames were slowest, and where?
    print(f"\ntop {TOP_N} slowest frames (by whole-pipeline envelope):")
    for trace in telemetry.tracer.slowest(TOP_N):
        print(f"  {trace.describe()}")

    all_traced = len(telemetry.tracer) == N_NODES * N_FRAMES
    print(f"\nevery frame of every stream carries a full trace: {all_traced}")


if __name__ == "__main__":
    main()
