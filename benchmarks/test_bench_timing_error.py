"""E8 — §III-B: system-level verification of the ±1 LSB late-detection error.

"...it is possible that some pulses are detected in the following clock
period, what will introduce a 1 LSB error in the 20 b compressed sample.
Verification on the negligible influence of this error has been performed at
system level."

This benchmark repeats that verification: the same scenes are captured with
and without the late-detection error (and, as a harsher variant, with an
artificially inflated error rate), reconstructed identically, and the PSNR
penalty is reported.  The paper's claim holds if the penalty is a small
fraction of a dB.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.operator import measurement_matrix_from_seed
from repro.recon.pipeline import reconstruct_frame, reconstruct_samples
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.tdc import apply_stochastic_lsb_error


def capture_pair(scene_kind, seed):
    """Capture one scene with and without the LSB error; reconstruct both."""
    config = SensorConfig(rows=32, cols=32)
    imager = CompressiveImager(config, seed=seed)
    scene = make_scene(scene_kind, (32, 32), seed=seed)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)

    clean = imager.capture(current, n_samples=400, lsb_error=False)
    noisy = imager.capture(current, n_samples=400, lsb_error=True)
    psnr_clean = reconstruct_frame(clean, max_iterations=120).metrics["psnr_db"]
    psnr_noisy = reconstruct_frame(noisy, max_iterations=120).metrics["psnr_db"]
    return {
        "scene": scene_kind,
        "psnr_ideal_db": psnr_clean,
        "psnr_with_lsb_error_db": psnr_noisy,
        "penalty_db": psnr_clean - psnr_noisy,
        "lsb_errors": noisy.metadata["n_lsb_errors"],
    }


def test_lsb_error_has_negligible_influence(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            capture_pair(kind, seed)
            for seed, kind in enumerate(("blobs", "natural", "gradient"))
        ],
        rounds=1, iterations=1,
    )
    print_table("±1 LSB late-detection error — system-level influence", rows)
    for row in rows:
        # "Negligible influence": well under 1 dB on every scene.
        assert abs(row["penalty_db"]) < 1.0


def test_inflated_error_rate_shows_where_it_would_matter(benchmark):
    """Sensitivity sweep: how large would the error rate have to be to matter?"""
    config = SensorConfig(rows=32, cols=32)
    imager = CompressiveImager(config, seed=4)
    scene = make_scene("blobs", (32, 32), seed=4)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    frame = imager.capture(current, n_samples=400, lsb_error=False)
    codes = frame.digital_image.reshape(-1).astype(np.int64)
    phi = measurement_matrix_from_seed(
        frame.seed_state, frame.n_samples, (32, 32),
        steps_per_sample=frame.steps_per_sample, warmup_steps=frame.warmup_steps,
    )

    def sweep():
        rng = np.random.default_rng(0)
        rows = []
        for probability in (0.0, 0.05, 0.25, 1.0):
            noisy_samples = np.empty(frame.n_samples, dtype=np.int64)
            for i in range(frame.n_samples):
                selected = codes[phi[i] > 0]
                bumped = apply_stochastic_lsb_error(selected, probability, max_code=255, rng=rng)
                noisy_samples[i] = bumped.sum()
            result = reconstruct_samples(
                phi, noisy_samples.astype(float), (32, 32),
                max_iterations=100, reference=frame.digital_image,
            )
            rows.append({"error_probability": probability, "psnr_db": result.metrics["psnr_db"]})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Sensitivity of reconstruction to the per-event +1 LSB error rate", rows)
    baseline = rows[0]["psnr_db"]
    realistic = rows[1]["psnr_db"]
    # At realistic error rates the penalty stays below 1 dB...
    assert baseline - realistic < 1.0
    # ...and even a 100% error rate (every event one tick late) costs only a
    # bounded amount because a uniform +1 shift is mostly absorbed by the DC term.
    assert baseline - rows[-1]["psnr_db"] < 6.0
