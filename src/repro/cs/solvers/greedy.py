"""Greedy sparse-recovery solvers: OMP and CoSaMP.

Greedy solvers build the support of the solution one (or a few) atoms at a
time and solve a least-squares problem restricted to that support.  They are
the right tool for the small, explicitly-sparse problems in the test-suite
and for block-based CS where each block is low-dimensional; the image-scale
benchmarks use the proximal solvers instead.
"""

from __future__ import annotations


import numpy as np

from repro.cs.operators import SensingOperator
from repro.cs.solvers.result import SolverResult, as_operator, check_measurements
from repro.utils.validation import check_positive


def _least_squares_on_support(
    operator: SensingOperator,
    measurements: np.ndarray,
    support: np.ndarray,
) -> np.ndarray:
    """Solve ``min ||y - A_S x_S||`` and embed the solution in a full vector."""
    columns = operator.columns(support.tolist())
    solution, _, _, _ = np.linalg.lstsq(columns, measurements, rcond=None)
    coefficients = np.zeros(operator.n_coefficients)
    coefficients[support] = solution
    return coefficients


def omp(
    operator_or_matrix: SensingOperator | np.ndarray,
    measurements: np.ndarray,
    *,
    sparsity: int,
    tolerance: float = 1e-6,
    max_iterations: int | None = None,
) -> SolverResult:
    """Orthogonal matching pursuit.

    Parameters
    ----------
    operator_or_matrix:
        Sensing operator (or dense matrix) A.
    measurements:
        Measurement vector y.
    sparsity:
        Number of atoms to select (the stopping criterion together with the
        residual tolerance).
    tolerance:
        Stop early when the residual norm falls below this value.
    max_iterations:
        Hard cap on iterations; defaults to ``sparsity``.
    """
    operator = as_operator(operator_or_matrix)
    measurements = check_measurements(operator, measurements)
    check_positive("sparsity", sparsity)
    if max_iterations is None:
        max_iterations = int(sparsity)
    check_positive("max_iterations", max_iterations)

    residual = measurements.copy()
    support: list = []
    history = []
    coefficients = np.zeros(operator.n_coefficients)
    converged = False
    iteration = 0
    for iteration in range(1, int(max_iterations) + 1):
        correlations = operator.rmatvec(residual)
        correlations[support] = 0.0
        best = int(np.argmax(np.abs(correlations)))
        support.append(best)
        coefficients = _least_squares_on_support(
            operator, measurements, np.array(support, dtype=int)
        )
        residual = measurements - operator.matvec(coefficients)
        history.append(float(np.linalg.norm(residual)))
        if history[-1] <= tolerance or len(support) >= sparsity:
            converged = history[-1] <= tolerance or len(support) >= sparsity
            break
    return SolverResult(
        coefficients=coefficients,
        n_iterations=iteration,
        converged=converged,
        residual_norm=history[-1] if history else float(np.linalg.norm(residual)),
        history=history,
    )


def cosamp(
    operator_or_matrix: SensingOperator | np.ndarray,
    measurements: np.ndarray,
    *,
    sparsity: int,
    max_iterations: int = 30,
    tolerance: float = 1e-6,
) -> SolverResult:
    """Compressive sampling matching pursuit (CoSaMP, Needell & Tropp 2009).

    Each iteration merges the ``2k`` strongest correlations into the current
    support, solves least squares on the merged support and prunes back to
    the ``k`` largest entries.
    """
    operator = as_operator(operator_or_matrix)
    measurements = check_measurements(operator, measurements)
    check_positive("sparsity", sparsity)
    check_positive("max_iterations", max_iterations)

    sparsity = int(sparsity)
    coefficients = np.zeros(operator.n_coefficients)
    residual = measurements.copy()
    history = []
    converged = False
    iteration = 0
    for iteration in range(1, int(max_iterations) + 1):
        correlations = operator.rmatvec(residual)
        candidate = np.argsort(np.abs(correlations))[::-1][: 2 * sparsity]
        current_support = np.nonzero(coefficients)[0]
        merged = np.union1d(candidate, current_support).astype(int)
        estimate = _least_squares_on_support(operator, measurements, merged)
        # Prune to the k largest entries.
        keep = np.argsort(np.abs(estimate))[::-1][:sparsity]
        coefficients = np.zeros(operator.n_coefficients)
        coefficients[keep] = estimate[keep]
        residual = measurements - operator.matvec(coefficients)
        history.append(float(np.linalg.norm(residual)))
        if history[-1] <= tolerance:
            converged = True
            break
        if len(history) >= 2 and abs(history[-2] - history[-1]) <= 1e-12:
            converged = True
            break
    return SolverResult(
        coefficients=coefficients,
        n_iterations=iteration,
        converged=converged,
        residual_norm=history[-1] if history else float(np.linalg.norm(residual)),
        history=history,
    )
