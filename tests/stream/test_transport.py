"""Tests for the loopback and TCP byte transports."""

import asyncio

import pytest

from repro.stream.transport import (
    LoopbackTransport,
    TransportClosedError,
    connect_tcp,
    serve_tcp,
)


def run(coro):
    return asyncio.run(coro)


class TestLoopbackTransport:
    def test_fifo_round_trip_and_eof(self):
        async def scenario():
            transport = LoopbackTransport(max_buffered=4)
            await transport.send(b"one")
            await transport.send(b"two")
            await transport.close()
            received = []
            while True:
                item = await transport.recv()
                if item is None:
                    break
                received.append(item)
            # EOF is sticky: further recv calls keep returning None.
            assert await transport.recv() is None
            return received

        assert run(scenario()) == [b"one", b"two"]

    def test_send_after_close_raises(self):
        async def scenario():
            transport = LoopbackTransport()
            await transport.close()
            with pytest.raises(TransportClosedError):
                await transport.send(b"late")

        run(scenario())

    def test_backpressure_blocks_the_producer(self):
        async def scenario():
            transport = LoopbackTransport(max_buffered=2)
            await transport.send(b"a")
            await transport.send(b"b")
            # The pipe is full: the third send must suspend until a recv.
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(transport.send(b"c"), timeout=0.05)
            assert await transport.recv() == b"a"
            await asyncio.wait_for(transport.send(b"d"), timeout=1.0)
            assert transport.high_watermark <= 2
            assert transport.stall_count >= 1

        run(scenario())

    def test_watermark_tracks_peak_occupancy(self):
        async def scenario():
            transport = LoopbackTransport(max_buffered=8)
            for index in range(5):
                await transport.send(bytes([index]))
            assert transport.high_watermark == 5
            assert transport.bytes_sent == 5
            assert transport.send_count == 5

        run(scenario())


class TestTcpTransport:
    def test_round_trip_over_localhost(self):
        async def scenario():
            received = []
            done = asyncio.Event()

            async def handler(transport):
                while True:
                    data = await transport.recv()
                    if data is None:
                        break
                    received.append(data)
                done.set()

            server, port = await serve_tcp(handler)
            sender = await connect_tcp("127.0.0.1", port)
            await sender.send(b"hello ")
            await sender.send(b"world")
            await sender.close()
            await asyncio.wait_for(done.wait(), timeout=5.0)
            server.close()
            await server.wait_closed()
            return b"".join(received)

        assert run(scenario()) == b"hello world"

    def test_send_after_close_raises(self):
        async def scenario():
            async def handler(transport):
                while await transport.recv() is not None:
                    pass

            server, port = await serve_tcp(handler)
            sender = await connect_tcp("127.0.0.1", port)
            await sender.close()
            with pytest.raises(TransportClosedError):
                await sender.send(b"late")
            server.close()
            await server.wait_closed()

        run(scenario())
