"""Tile-by-tile reconstruction of sharded captures."""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_tiled
from repro.sensor.shard import TiledSensorArray


@pytest.fixture(scope="module")
def tiled_capture():
    scene = make_scene("blobs", (32, 48), seed=4)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    array = TiledSensorArray((32, 48), tile_shape=(16, 16), seed=9)
    return array.capture(current)


class TestReconstructTiled:
    def test_stitches_full_scene(self, tiled_capture):
        result = reconstruct_tiled(tiled_capture, max_iterations=60)
        assert result.image.shape == (32, 48)
        grid_rows = len(result.tile_results)
        grid_cols = len(result.tile_results[0])
        assert (grid_rows, grid_cols) == tiled_capture.grid_shape

    def test_metrics_against_stitched_digital_image(self, tiled_capture):
        result = reconstruct_tiled(tiled_capture, max_iterations=60)
        assert set(result.metrics) == {"psnr_db", "snr_db"}
        # R = 0.4 on a smooth scene recovers a clearly recognisable image.
        assert result.metrics["psnr_db"] > 15.0

    def test_capture_metadata_carried(self, tiled_capture):
        result = reconstruct_tiled(tiled_capture, max_iterations=30)
        assert result.capture_metadata["n_tiles"] == tiled_capture.n_tiles
        assert result.capture_metadata["event_statistics"] == "modelled"

    def test_thread_executor_matches_serial(self, tiled_capture):
        serial = reconstruct_tiled(tiled_capture, max_iterations=40, executor="serial")
        threaded = reconstruct_tiled(
            tiled_capture, max_iterations=40, executor="thread", max_workers=2
        )
        assert np.array_equal(serial.image, threaded.image)

    def test_batched_executor_matches_per_tile(self, tiled_capture):
        """The default batched solve is the per-tile solve, vectorised."""
        batched = reconstruct_tiled(tiled_capture, max_iterations=40)
        serial = reconstruct_tiled(tiled_capture, max_iterations=40, executor="serial")
        np.testing.assert_allclose(batched.image, serial.image, atol=1e-8)
        for batched_row, serial_row in zip(batched.tile_results, serial.tile_results):
            for batched_tile, serial_tile in zip(batched_row, serial_row):
                assert batched_tile.solver_result.converged == (
                    serial_tile.solver_result.converged
                )

    def test_batched_falls_back_for_greedy_solvers(self, tiled_capture):
        """Non-proximal solvers ride the per-tile loop inside the batched executor."""
        batched = reconstruct_tiled(tiled_capture, solver="omp", sparsity=12)
        serial = reconstruct_tiled(
            tiled_capture, solver="omp", sparsity=12, executor="serial"
        )
        assert batched.image.tobytes() == serial.image.tobytes()

    def test_dense_operator_reachable(self, tiled_capture):
        dense = reconstruct_tiled(tiled_capture, max_iterations=40, operator="dense")
        structured = reconstruct_tiled(
            tiled_capture, max_iterations=40, executor="serial"
        )
        np.testing.assert_allclose(dense.image, structured.image, atol=1e-8)

    def test_explicit_reference_overrides_digital_image(self, tiled_capture):
        reference = tiled_capture.digital_image().astype(float)
        result = reconstruct_tiled(
            tiled_capture, max_iterations=30, reference=reference
        )
        assert result.metrics["psnr_db"] > 0.0

    def test_no_reference_no_metrics(self):
        scene = make_scene("blobs", (16, 16), seed=4)
        current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
        array = TiledSensorArray((16, 16), tile_shape=(16, 16), seed=9)
        capture = array.capture(current, keep_digital_image=False)
        result = reconstruct_tiled(capture, max_iterations=20)
        assert result.metrics == {}

    def test_invalid_executor_rejected(self, tiled_capture):
        with pytest.raises(ValueError, match="executor"):
            reconstruct_tiled(tiled_capture, executor="process")
