"""Shared fixtures for the test-suite.

Most tests use a scaled-down sensor (16x16 or 32x32) so the whole suite runs
in seconds; the full 64x64 Table II configuration is exercised by the
integration tests and the benchmarks.
"""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


@pytest.fixture
def small_config() -> SensorConfig:
    """A 16x16 sensor with the prototype's timing parameters."""
    return SensorConfig(rows=16, cols=16)


@pytest.fixture
def medium_config() -> SensorConfig:
    """A 32x32 sensor, large enough for meaningful reconstructions."""
    return SensorConfig(rows=32, cols=32)


@pytest.fixture
def default_config() -> SensorConfig:
    """The Table II prototype configuration (64x64)."""
    return SensorConfig()


@pytest.fixture
def small_imager(small_config) -> CompressiveImager:
    """Imager built on the 16x16 configuration with a fixed seed."""
    return CompressiveImager(small_config, seed=1234)


@pytest.fixture
def medium_imager(medium_config) -> CompressiveImager:
    """Imager built on the 32x32 configuration with a fixed seed."""
    return CompressiveImager(medium_config, seed=1234)


@pytest.fixture
def photo_conversion() -> PhotoConversion:
    """Noise-free photo conversion for deterministic pixel-level tests."""
    return PhotoConversion(prnu_sigma=0.0, shot_noise=False, seed=7)


@pytest.fixture
def blob_scene_16() -> np.ndarray:
    """A smooth 16x16 test scene."""
    return make_scene("blobs", (16, 16), seed=42)


@pytest.fixture
def blob_scene_32() -> np.ndarray:
    """A smooth 32x32 test scene."""
    return make_scene("blobs", (32, 32), seed=42)


@pytest.fixture
def natural_scene_64() -> np.ndarray:
    """A 1/f 'natural' 64x64 scene for the integration tests."""
    return make_scene("natural", (64, 64), seed=42)
