"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, new_rng, nonzero_seed_bits, random_bits


class TestNewRng:
    def test_same_seed_same_stream(self):
        assert new_rng(7).random() == new_rng(7).random()

    def test_different_seeds_differ(self):
        assert new_rng(7).random() != new_rng(8).random()

    def test_passthrough_generator(self):
        generator = np.random.default_rng(3)
        assert new_rng(generator) is generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "scene", 5) == derive_seed(1, "scene", 5)

    def test_labels_matter(self):
        assert derive_seed(1, "scene") != derive_seed(1, "noise")

    def test_base_seed_matters(self):
        assert derive_seed(1, "scene") != derive_seed(2, "scene")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestRandomBits:
    def test_length_and_dtype(self):
        bits = random_bits(100, seed=1)
        assert bits.shape == (100,)
        assert bits.dtype == np.uint8

    def test_density_respected(self):
        bits = random_bits(20000, seed=1, density=0.25)
        assert 0.2 < bits.mean() < 0.3

    def test_zero_density_gives_all_zeros(self):
        assert random_bits(100, seed=1, density=0.0).sum() == 0

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            random_bits(10, density=1.5)


class TestNonzeroSeedBits:
    def test_always_has_a_set_bit(self):
        for seed in range(30):
            assert nonzero_seed_bits(8, seed).any()

    def test_reproducible(self):
        assert np.array_equal(nonzero_seed_bits(32, 5), nonzero_seed_bits(32, 5))

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            nonzero_seed_bits(0)
